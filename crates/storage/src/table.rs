//! Tables and the catalog.
//!
//! A [`Database`] owns tables (heap files) and indexes (B+-trees) and hands
//! out stable ids for both.  It is immutable once loaded and `Sync`, so the
//! map builder can sweep parameter grids from many threads, each with its
//! own [`crate::Session`].

use crate::btree::{BTree, Key};
use crate::buffer::FileId;
use crate::heap::{HeapFile, Rid};
use crate::schema::{Row, Schema};
use crate::{Result, StorageError};

/// Identifies a table within a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

/// Identifies an index within a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexId(pub u32);

/// A table: a named heap file.
pub struct Table {
    /// Table name, unique in the catalog.
    pub name: String,
    /// The main storage structure.
    pub heap: HeapFile,
}

/// A secondary (non-clustered) index definition plus its B+-tree.
pub struct IndexDef {
    /// Index name, unique in the catalog.
    pub name: String,
    /// The indexed table.
    pub table: TableId,
    /// Positions of the key columns in the table schema, in key order.
    pub key_columns: Vec<usize>,
    /// The tree mapping composite keys to rids.
    pub tree: BTree,
}

impl IndexDef {
    /// Extract this index's key from a table row.
    pub fn key_of(&self, row: &Row) -> Key {
        let mut vals = [0i64; crate::btree::MAX_KEY_COLS];
        for (i, &col) in self.key_columns.iter().enumerate() {
            vals[i] = row.get(col);
        }
        Key::new(&vals[..self.key_columns.len()])
    }

    /// Whether the index key contains all of `columns` (i.e. the index
    /// *covers* a query touching only those columns).
    pub fn covers(&self, columns: &[usize]) -> bool {
        columns.iter().all(|c| self.key_columns.contains(c))
    }
}

/// The catalog: tables, indexes and the file-id allocator.
#[derive(Default)]
pub struct Database {
    tables: Vec<Table>,
    indexes: Vec<IndexDef>,
    next_file: u32,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh file id (also used by operators for spill files;
    /// ids handed to queries at run time come from
    /// [`Database::temp_file_base`] upward).
    pub fn alloc_file(&mut self) -> FileId {
        let id = FileId(self.next_file);
        self.next_file += 1;
        id
    }

    /// First file id guaranteed never to collide with catalog objects.
    /// Operators derive per-query temp file ids from this base.
    pub fn temp_file_base(&self) -> u32 {
        self.next_file.max(1) + 1_000_000
    }

    /// Attach a fully built heap as a table (the workload cache's load
    /// path).  The heap's file id is reserved so later
    /// [`Database::alloc_file`] calls never collide with it.
    pub fn attach_table(&mut self, name: &str, heap: HeapFile) -> TableId {
        self.next_file = self.next_file.max(heap.file_id().0 + 1);
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Table { name: name.to_string(), heap });
        id
    }

    /// Attach a fully built B+-tree as a non-clustered index on
    /// `key_columns` of `table` (the workload cache's load path, and the
    /// target of [`crate::BTree::bulk_load`]s performed outside the catalog
    /// — e.g. in parallel).  Validates the key columns against the table
    /// schema and reserves the tree's file id, exactly as
    /// [`Database::create_index`] would.
    pub fn attach_index(
        &mut self,
        name: &str,
        table: TableId,
        key_columns: &[usize],
        tree: BTree,
    ) -> Result<IndexId> {
        let heap = &self
            .tables
            .get(table.0 as usize)
            .ok_or_else(|| StorageError::UnknownObject(format!("table #{}", table.0)))?
            .heap;
        for &c in key_columns {
            if c >= heap.schema().arity() {
                return Err(StorageError::SchemaMismatch(format!("key column {c} out of range")));
            }
        }
        if tree.key_arity() != key_columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "tree arity {} vs {} key columns",
                tree.key_arity(),
                key_columns.len()
            )));
        }
        self.next_file = self.next_file.max(tree.file_id().0 + 1);
        let id = IndexId(self.indexes.len() as u32);
        self.indexes.push(IndexDef {
            name: name.to_string(),
            table,
            key_columns: key_columns.to_vec(),
            tree,
        });
        Ok(id)
    }

    /// Create an empty table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> TableId {
        let file = self.alloc_file();
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Table { name: name.to_string(), heap: HeapFile::new(file, schema) });
        id
    }

    /// Append a row to a table (load path, not charged to a session).
    pub fn insert_row(&mut self, table: TableId, row: &Row) -> Result<Rid> {
        self.tables
            .get_mut(table.0 as usize)
            .ok_or_else(|| StorageError::UnknownObject(format!("table #{}", table.0)))?
            .heap
            .append(row)
    }

    /// Build a non-clustered index on `key_columns` of `table` by scanning
    /// the heap and bulk-loading a B+-tree (fill factor 0.9, the customary
    /// default for freshly built indexes).
    pub fn create_index(&mut self, name: &str, table: TableId, key_columns: &[usize]) -> Result<IndexId> {
        let file = self.alloc_file();
        let heap = &self
            .tables
            .get(table.0 as usize)
            .ok_or_else(|| StorageError::UnknownObject(format!("table #{}", table.0)))?
            .heap;
        for &c in key_columns {
            if c >= heap.schema().arity() {
                return Err(StorageError::SchemaMismatch(format!("key column {c} out of range")));
            }
        }
        // Collect (key, rid) pairs; the load path is not charged.
        let session = crate::Session::with_pool_pages(0);
        let mut entries: Vec<(Key, Rid)> = Vec::with_capacity(heap.row_count() as usize);
        let def_cols = key_columns.to_vec();
        heap.scan(&session, |rid, row| {
            let mut vals = [0i64; crate::btree::MAX_KEY_COLS];
            for (i, &col) in def_cols.iter().enumerate() {
                vals[i] = row.get(col);
            }
            entries.push((Key::new(&vals[..def_cols.len()]), rid));
        });
        entries.sort_unstable();
        let tree = BTree::bulk_load(file, key_columns.len(), &entries, 0.9);
        let id = IndexId(self.indexes.len() as u32);
        self.indexes.push(IndexDef {
            name: name.to_string(),
            table,
            key_columns: key_columns.to_vec(),
            tree,
        });
        Ok(id)
    }

    /// Look up a table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Look up an index by id.
    #[allow(clippy::should_implement_trait)] // catalog lookup, not ops::Index
    pub fn index(&self, id: IndexId) -> &IndexDef {
        &self.indexes[id.0 as usize]
    }

    /// Mutable table lookup — the churn engine's entry point.  The catalog
    /// stays immutable *during* a map sweep; churn batches run strictly
    /// between sweeps, on the single thread that owns the database.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.0 as usize]
    }

    /// Mutable index lookup (see [`Database::table_mut`]): secondary-index
    /// maintenance under churn goes through [`crate::BTree::insert`] /
    /// [`crate::BTree::delete`], both of which charge the session.
    pub fn index_def_mut(&mut self, id: IndexId) -> &mut IndexDef {
        &mut self.indexes[id.0 as usize]
    }

    /// Find a table id by name.
    pub fn table_by_name(&self, name: &str) -> Result<TableId> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .map(|i| TableId(i as u32))
            .ok_or_else(|| StorageError::UnknownObject(name.to_string()))
    }

    /// Find an index id by name.
    pub fn index_by_name(&self, name: &str) -> Result<IndexId> {
        self.indexes
            .iter()
            .position(|i| i.name == name)
            .map(|i| IndexId(i as u32))
            .ok_or_else(|| StorageError::UnknownObject(name.to_string()))
    }

    /// All indexes on `table`.
    pub fn indexes_on(&self, table: TableId) -> impl Iterator<Item = (IndexId, &IndexDef)> {
        self.indexes
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.table == table)
            .map(|(i, d)| (IndexId(i as u32), d))
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of indexes.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.iter().map(|t| &t.name).collect::<Vec<_>>())
            .field("indexes", &self.indexes.iter().map(|i| &i.name).collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::sim::AccessKind;
    use crate::Session;

    fn demo_db(rows: i64) -> (Database, TableId) {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            ("a", ColumnType::Int),
            ("b", ColumnType::Int),
            ("c", ColumnType::Int),
        ]);
        let t = db.create_table("demo", schema);
        for i in 0..rows {
            db.insert_row(t, &Row::from_slice(&[i, i % 16, i * 3])).unwrap();
        }
        (db, t)
    }

    #[test]
    fn create_index_covers_all_rows() {
        let (mut db, t) = demo_db(1000);
        let idx = db.create_index("idx_a", t, &[0]).unwrap();
        let def = db.index(idx);
        assert_eq!(def.tree.len(), 1000);
        def.tree.check_invariants().unwrap();
        // All entries point at real rows with the right key.
        let s = Session::with_pool_pages(0);
        for (key, rid) in def.tree.collect_all() {
            let row = db.table(t).heap.fetch(rid, &s, AccessKind::Random).unwrap();
            assert_eq!(key.get(0), row.get(0));
        }
    }

    #[test]
    fn composite_index_orders_by_both_columns() {
        let (mut db, t) = demo_db(500);
        let idx = db.create_index("idx_ba", t, &[1, 0]).unwrap();
        let entries = db.index(idx).tree.collect_all();
        assert!(entries.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(entries.len(), 500);
        assert_eq!(db.index(idx).key_columns, vec![1, 0]);
    }

    #[test]
    fn covers_checks_key_columns() {
        let (mut db, t) = demo_db(10);
        let idx = db.create_index("idx_ab", t, &[0, 1]).unwrap();
        let def = db.index(idx);
        assert!(def.covers(&[0]));
        assert!(def.covers(&[1, 0]));
        assert!(!def.covers(&[2]));
    }

    #[test]
    fn lookups_by_name() {
        let (mut db, t) = demo_db(10);
        db.create_index("idx_a", t, &[0]).unwrap();
        assert_eq!(db.table_by_name("demo").unwrap(), t);
        assert!(db.table_by_name("nope").is_err());
        assert!(db.index_by_name("idx_a").is_ok());
        assert!(db.index_by_name("idx_z").is_err());
        assert_eq!(db.indexes_on(t).count(), 1);
    }

    #[test]
    fn bad_key_column_rejected() {
        let (mut db, t) = demo_db(10);
        assert!(db.create_index("idx_bad", t, &[9]).is_err());
    }

    #[test]
    fn attach_reconstructs_create_path_exactly() {
        use crate::page::SlottedPage;

        let (mut original, t) = demo_db(500);
        original.create_index("idx_a", t, &[0]).unwrap();

        // Round-trip the heap through raw page images and the index through
        // its sorted entries — what the workload cache persists.
        let heap = &original.table(t).heap;
        let pages: Vec<SlottedPage> = (0..heap.page_count())
            .map(|p| SlottedPage::from_bytes(heap.page(p).unwrap().as_bytes()))
            .collect();
        let rebuilt_heap =
            crate::HeapFile::from_pages(heap.file_id(), heap.schema().clone(), pages);
        assert_eq!(rebuilt_heap.row_count(), heap.row_count());

        let mut reloaded = Database::new();
        let t2 = reloaded.attach_table("demo", rebuilt_heap);
        let entries = original.index(IndexId(0)).tree.collect_all();
        let tree = crate::BTree::bulk_load(
            original.index(IndexId(0)).tree.file_id(),
            1,
            &entries,
            0.9,
        );
        let idx = reloaded.attach_index("idx_a", t2, &[0], tree).unwrap();

        assert_eq!(reloaded.index(idx).tree.collect_all(), entries);
        assert_eq!(reloaded.temp_file_base(), original.temp_file_base());
        // Identical page-access behaviour: scan both heaps with one session
        // each and compare the charged stats.
        let (s1, s2) = (Session::with_pool_pages(8), Session::with_pool_pages(8));
        let mut rows1 = Vec::new();
        original.table(t).heap.scan(&s1, |rid, r| rows1.push((rid, r.values().to_vec())));
        let mut rows2 = Vec::new();
        reloaded.table(t2).heap.scan(&s2, |rid, r| rows2.push((rid, r.values().to_vec())));
        assert_eq!(rows1, rows2);
        assert_eq!(s1.stats(), s2.stats());
    }

    #[test]
    fn attach_index_validates_key_columns() {
        let (mut db, t) = demo_db(10);
        let tree = crate::BTree::new(crate::FileId(9), 1);
        assert!(db.attach_index("bad", t, &[99], tree).is_err());
        let tree2 = crate::BTree::new(crate::FileId(9), 2);
        assert!(db.attach_index("arity", t, &[0], tree2).is_err());
    }

    #[test]
    fn temp_file_base_clears_catalog_files() {
        let (mut db, t) = demo_db(10);
        db.create_index("idx_a", t, &[0]).unwrap();
        let base = db.temp_file_base();
        assert!(base > db.index_count() as u32 + db.table_count() as u32);
    }
}
