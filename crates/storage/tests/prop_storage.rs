//! Property-based tests for the storage substrate.
//!
//! Strategy: model-based testing.  Each structure is driven by a random
//! operation sequence and compared against a trivially correct model
//! (`BTreeMap` / `BTreeSet` / `Vec`), with structural invariants checked
//! along the way.

use proptest::prelude::*;
use robustmap_storage::btree::{BTree, Key};
use robustmap_storage::{
    AccessKind, ColumnType, EvictionPolicy, FileId, HeapFile, RidBitmap, Row, Schema, Session,
    SlottedPage,
};
use robustmap_storage::heap::Rid;
use std::collections::{BTreeMap, BTreeSet};

fn session() -> Session {
    Session::with_pool_pages(64)
}

// ---------------------------------------------------------------- B+-tree

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(i64, u32),
    Delete(i64, u32),
    Lookup(i64),
    Range(i64, i64),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (0i64..64, 0u32..8).prop_map(|(k, r)| TreeOp::Insert(k, r)),
        (0i64..64, 0u32..8).prop_map(|(k, r)| TreeOp::Delete(k, r)),
        (0i64..64).prop_map(TreeOp::Lookup),
        (0i64..64, 0i64..64).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tree behaves exactly like an ordered set of (key, rid) pairs,
    /// and never violates its structural invariants.
    #[test]
    fn btree_matches_model(ops in prop::collection::vec(tree_op(), 1..300)) {
        let s = session();
        // Small caps force frequent splits and merges.
        let mut tree = BTree::with_caps(FileId(0), 1, 4, 4);
        let mut model: BTreeSet<(i64, u32)> = BTreeSet::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, r) => {
                    let inserted = tree.insert(Key::single(k), Rid::new(0, r), &s);
                    prop_assert_eq!(inserted, model.insert((k, r)));
                }
                TreeOp::Delete(k, r) => {
                    let deleted = tree.delete(Key::single(k), Rid::new(0, r), &s);
                    prop_assert_eq!(deleted, model.remove(&(k, r)));
                }
                TreeOp::Lookup(k) => {
                    let got = tree.get_first(&Key::single(k), &s);
                    let want = model
                        .range((k, 0)..=(k, u32::MAX))
                        .next()
                        .map(|&(_, r)| Rid::new(0, r));
                    prop_assert_eq!(got, want);
                }
                TreeOp::Range(lo, hi) => {
                    let mut got = Vec::new();
                    tree.scan_range(
                        &Key::single(lo),
                        &Key::single(hi),
                        &s,
                        AccessKind::Sequential,
                        |(k, rid)| got.push((k.get(0), rid.slot)),
                    );
                    let want: Vec<(i64, u32)> =
                        model.range((lo, 0)..=(hi, u32::MAX)).copied().collect();
                    prop_assert_eq!(got, want);
                }
            }
            tree.check_invariants().map_err(TestCaseError::fail)?;
            prop_assert_eq!(tree.len() as usize, model.len());
        }
        // Final full ordering agreement.
        let all: Vec<(i64, u32)> =
            tree.collect_all().iter().map(|(k, r)| (k.get(0), r.slot)).collect();
        let want: Vec<(i64, u32)> = model.iter().copied().collect();
        prop_assert_eq!(all, want);
    }

    /// Bulk load over any sorted unique entry set equals the insert path.
    #[test]
    fn btree_bulk_load_equals_inserts(
        keys in prop::collection::btree_set((0i64..10_000, 0u32..16), 0..400),
        fill in 0.3f64..1.0,
    ) {
        let entries: Vec<(Key, Rid)> = keys
            .iter()
            .map(|&(k, r)| (Key::single(k), Rid::new(0, r)))
            .collect();
        let bulk = BTree::bulk_load_with_caps(FileId(0), 1, &entries, fill, 8, 8);
        bulk.check_invariants().map_err(TestCaseError::fail)?;
        let s = session();
        let mut incremental = BTree::with_caps(FileId(1), 1, 8, 8);
        for &(k, r) in &entries {
            incremental.insert(k, r, &s);
        }
        prop_assert_eq!(bulk.collect_all(), incremental.collect_all());
    }

    /// Composite-key prefix scans return exactly the rows a filter would.
    #[test]
    fn btree_prefix_scan_equals_filter(
        pairs in prop::collection::btree_set((0i64..20, 0i64..20), 0..200),
        probe in 0i64..20,
    ) {
        let entries: Vec<(Key, Rid)> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (Key::pair(a, b), Rid::new(0, i as u32)))
            .collect();
        let mut sorted = entries.clone();
        sorted.sort_unstable();
        let tree = BTree::bulk_load_with_caps(FileId(0), 2, &sorted, 0.9, 8, 8);
        let s = session();
        let mut got = Vec::new();
        tree.scan_range(
            &Key::padded_lo(&[probe], 2),
            &Key::padded_hi(&[probe], 2),
            &s,
            AccessKind::Sequential,
            |(k, _)| got.push((k.get(0), k.get(1))),
        );
        let want: Vec<(i64, i64)> =
            pairs.iter().copied().filter(|&(a, _)| a == probe).collect();
        prop_assert_eq!(got, want);
    }
}

/// One step of the miniature churn workload below.
#[derive(Debug, Clone, Copy)]
enum ChurnStep {
    /// Insert `Key::pair(a, b)` under slot `1000 + r`.
    Insert(i64, i64, u32),
    /// Delete the `i % live`-th live entry (model order).
    DeleteAt(usize),
    /// Delete a (key, rid) pair that was never inserted.
    DeleteMissing(i64, i64),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The churn lifecycle in miniature: a *bulk-loaded* composite-key
    /// tree (the shape every catalog index starts in) driven through a
    /// mixed insert/delete interleaving, against a `BTreeMap` model.
    /// Bulk-loaded nodes are packed to the fill factor, so the very first
    /// inserts split full leaves and the first deletes underflow them —
    /// paths the build-from-empty test above never starts from.  After
    /// every operation the structural invariants must hold; at the end,
    /// full ordering, point lookups and prefix ranges must agree.
    #[test]
    fn bulk_loaded_btree_survives_mixed_churn(
        base in prop::collection::btree_set((0i64..48, 0i64..48), 1..120),
        ops in prop::collection::vec(
            prop_oneof![
                // Insert a fresh (key, rid) pair.
                (0i64..48, 0i64..48, 0u32..64).prop_map(|(a, b, r)| ChurnStep::Insert(a, b, r)),
                // Delete a *live* entry picked by index — hits the
                // bulk-loaded population as readily as churn inserts,
                // exactly like the driver picking victims.
                (0usize..4096).prop_map(ChurnStep::DeleteAt),
                // Delete a (key, rid) that was never inserted.
                (0i64..48, 0i64..48).prop_map(|(a, b)| ChurnStep::DeleteMissing(a, b)),
            ],
            1..250,
        ),
        fill in 0.5f64..1.0,
        probe in 0i64..48,
    ) {
        let s = session();
        let entries: Vec<(Key, Rid)> = base
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (Key::pair(a, b), Rid::new(0, i as u32)))
            .collect();
        let mut tree = BTree::bulk_load_with_caps(FileId(0), 2, &entries, fill, 6, 6);
        let mut model: BTreeMap<(i64, i64, u32), Rid> = base
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| ((a, b, i as u32), Rid::new(0, i as u32)))
            .collect();
        for op in ops {
            match op {
                ChurnStep::Insert(a, b, r) => {
                    let rid = Rid::new(0, 1000 + r);
                    let did = tree.insert(Key::pair(a, b), rid, &s);
                    prop_assert_eq!(did, model.insert((a, b, 1000 + r), rid).is_none());
                }
                ChurnStep::DeleteAt(i) => {
                    if model.is_empty() {
                        continue;
                    }
                    let (&(a, b, slot), &rid) =
                        model.iter().nth(i % model.len()).expect("non-empty");
                    prop_assert!(tree.delete(Key::pair(a, b), rid, &s));
                    model.remove(&(a, b, slot));
                }
                ChurnStep::DeleteMissing(a, b) => {
                    // Rid 5000 is above both the base slots and the
                    // churn-insert slots, so this (key, rid) never exists.
                    prop_assert!(!tree.delete(Key::pair(a, b), Rid::new(0, 5000), &s));
                }
            }
            tree.check_invariants().map_err(TestCaseError::fail)?;
            prop_assert_eq!(tree.len() as usize, model.len());
        }
        // Full ordering agreement.
        let all: Vec<(i64, i64, u32)> =
            tree.collect_all().iter().map(|(k, r)| (k.get(0), k.get(1), r.slot)).collect();
        let want: Vec<(i64, i64, u32)> = model.keys().copied().collect();
        prop_assert_eq!(all, want);
        // Point lookup through the churned structure.
        let got = tree.get_first(&Key::pair(probe, probe), &s);
        let want_first = model
            .range((probe, probe, 0)..=(probe, probe, u32::MAX))
            .next()
            .map(|(_, &rid)| rid);
        prop_assert_eq!(got, want_first);
        // Prefix range scan over the leading column.
        let mut got = Vec::new();
        tree.scan_range(
            &Key::padded_lo(&[probe], 2),
            &Key::padded_hi(&[probe], 2),
            &s,
            AccessKind::Sequential,
            |(k, rid)| got.push((k.get(0), k.get(1), rid.slot)),
        );
        let want: Vec<(i64, i64, u32)> = model
            .range((probe, i64::MIN, 0)..=(probe, i64::MAX, u32::MAX))
            .map(|(&(a, b, _), r)| (a, b, r.slot))
            .collect();
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------- bitmap

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bitmap algebra agrees with set algebra, and iteration is sorted.
    #[test]
    fn bitmap_matches_set_model(
        a in prop::collection::btree_set(0u64..100_000, 0..300),
        b in prop::collection::btree_set(0u64..100_000, 0..300),
    ) {
        let ba: RidBitmap = a.iter().copied().collect();
        let bb: RidBitmap = b.iter().copied().collect();
        prop_assert_eq!(ba.count() as usize, a.len());
        prop_assert_eq!(
            ba.and(&bb).iter().collect::<Vec<_>>(),
            a.intersection(&b).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            ba.or(&bb).iter().collect::<Vec<_>>(),
            a.union(&b).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            ba.and_not(&bb).iter().collect::<Vec<_>>(),
            a.difference(&b).copied().collect::<Vec<_>>()
        );
        // Iteration is strictly increasing.
        let items: Vec<u64> = ba.iter().collect();
        prop_assert!(items.windows(2).all(|w| w[0] < w[1]));
        for &x in &a {
            prop_assert!(ba.contains(x));
        }
    }
}

// ---------------------------------------------------------------- pages

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert/delete/compact on a slotted page preserves surviving records
    /// and their slot ids.
    #[test]
    fn slotted_page_model(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..40),
        delete_mask in prop::collection::vec(any::<bool>(), 40),
    ) {
        let mut page = SlottedPage::new();
        let mut model: BTreeMap<usize, Option<Vec<u8>>> = BTreeMap::new();
        for rec in &records {
            if !page.fits(rec.len()) {
                break;
            }
            let slot = page.insert(rec).unwrap();
            model.insert(slot, Some(rec.clone()));
        }
        for (i, (&slot, _)) in model.clone().iter().enumerate() {
            if delete_mask[i % delete_mask.len()] {
                page.delete(slot).unwrap();
                model.insert(slot, None);
            }
        }
        page.compact();
        for (&slot, expect) in &model {
            prop_assert_eq!(page.get(slot), expect.as_deref());
        }
        prop_assert_eq!(
            page.live_records(),
            model.values().filter(|v| v.is_some()).count()
        );
    }
}

// ---------------------------------------------------------------- heap

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A heap scan visits exactly the appended rows, in order; fetch by rid
    /// returns the same row the scan reported.
    #[test]
    fn heap_scan_and_fetch_agree(vals in prop::collection::vec((any::<i64>(), any::<i64>()), 1..500)) {
        let schema = Schema::new(vec![("x", ColumnType::Int), ("y", ColumnType::Int)]);
        let mut heap = HeapFile::new(FileId(0), schema);
        let mut rids = Vec::new();
        for &(x, y) in &vals {
            rids.push(heap.append(&Row::from_slice(&[x, y])).unwrap());
        }
        let s = session();
        let mut scanned: Vec<(Rid, i64, i64)> = Vec::new();
        heap.scan(&s, |rid, row| scanned.push((rid, row.get(0), row.get(1))));
        prop_assert_eq!(scanned.len(), vals.len());
        for (i, &(rid, x, y)) in scanned.iter().enumerate() {
            prop_assert_eq!((x, y), vals[i]);
            let fetched = heap.fetch(rid, &s, AccessKind::Random).unwrap();
            prop_assert_eq!(fetched.values(), &[x, y]);
        }
    }
}

// ---------------------------------------------------------------- buffer

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any access pattern the pool never exceeds capacity, and an
    /// immediately repeated access always hits (capacity >= 1).
    #[test]
    fn buffer_pool_capacity_and_rehit(
        accesses in prop::collection::vec(0u32..64, 1..400),
        cap in 1usize..32,
        use_clock in any::<bool>(),
    ) {
        let policy = if use_clock { EvictionPolicy::Clock } else { EvictionPolicy::Lru };
        let mut pool = robustmap_storage::BufferPool::new(cap, policy);
        for &p in &accesses {
            let pid = robustmap_storage::PageId::new(FileId(0), p);
            pool.access(pid);
            prop_assert!(pool.resident() <= cap);
            prop_assert!(pool.access(pid), "immediate re-access must hit");
        }
        let (hits, misses, _) = pool.counters();
        prop_assert_eq!(hits + misses, accesses.len() as u64 * 2);
    }
}
