//! When does a mid-flight switch pay?  The policy side of adaptive
//! execution.
//!
//! The executor's adaptive layer ([`robustmap_executor::ops::adaptive`])
//! reports exact cardinalities at materialization points and obeys
//! whatever a `SwitchController` answers.  This module supplies the
//! answers:
//!
//! * [`SwitchPolicy`] — the *trip* predicate.  The compile-time
//!   [`Choice`] came with a credible region around its cardinality
//!   estimate; observing more rows than the region's upper edge
//!   ([`SwitchPolicy::band_hi`]) means the estimate was wrong in the
//!   direction that makes the chosen plan more expensive, and the policy
//!   recommends reconsidering.  Undershooting the estimate only makes the
//!   chosen plan *cheaper* than predicted, so the policy never trips on
//!   it — which also keeps [`SwitchPolicy::should_switch`] monotone in
//!   the observed cardinality (pinned by `tests/prop_choice.rs`).
//! * [`BailController`] — the full decision.  When the policy trips, the
//!   controller re-costs the *remaining* pipeline with the observed
//!   cardinality substituted for the estimate, re-costs the fallback plan
//!   the same way, and bails only when abandoning pays by more than the
//!   hedging slack.  A trip whose corrected costs still favour the
//!   incumbent is a no-op — the run stays charge-identical to the static
//!   executor.
//!
//! Degenerate edges (also pinned by the property tests): a margin of ∞ or
//! a `penalty_weight` of 0 in the reused [`RobustConfig`] disable
//! switching entirely — zero penalty means the caller does not price
//! worst-case outcomes, so hedging mid-flight cannot pay either.

use robustmap_executor::{
    CheckpointKind, FetchKind, Observation, PlanSpec, SwitchController, SwitchDirective,
};
use robustmap_storage::CostModel;
use robustmap_workload::{COL_A, COL_B};

use crate::choice::Choice;
use crate::optimizer::{
    clamp_sel, estimate_cost, estimate_fetch, frechet_clamp, CatalogStats, SelEstimates,
};
use crate::robust::RobustConfig;

/// Absolute slack added to the credible band's upper edge: sampled and
/// rounded cardinalities jitter by a handful of rows around tiny
/// expectations, and a trip predicate without a noise floor would fire on
/// that jitter exactly where the estimates are *right* (the same
/// minimum-evidence idea as [`crate::optimizer::JOINT_MIN_EVIDENCE`]).
pub const CARDINALITY_NOISE_ROWS: f64 = 16.0;

/// Default multiplicative half-width of the credible band on observed
/// rows: a factor-2 cardinality surprise is where textbook estimates stop
/// being credible.
pub const DEFAULT_BAND_FACTOR: f64 = 2.0;

/// The trip predicate: decides whether an observed cardinality is
/// surprising enough to reconsider the running plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchPolicy {
    /// The compile-time expected cardinality at the checkpoint.
    pub expected_rows: f64,
    /// Upper edge of the credible region on observed rows; observing more
    /// trips the policy.
    pub band_hi: f64,
    /// The compile-time [`Choice::margin`] (cost units): how decisively
    /// the chosen plan won.  A switch must pay by more than the
    /// margin-derived slack; `∞` disables switching.
    pub margin: f64,
    /// Reused robust knobs: `penalty_weight` scales the hedging slack and
    /// `0` disables switching (no price on worst-case outcomes means no
    /// reason to hedge).
    pub cfg: RobustConfig,
}

impl SwitchPolicy {
    /// Policy for a compile-time `choice` whose checkpoint cardinality
    /// estimate is `expected_rows`, with a credible band of
    /// `expected_rows * band_factor + CARDINALITY_NOISE_ROWS`.
    pub fn from_choice(
        choice: &Choice,
        expected_rows: f64,
        band_factor: f64,
        cfg: RobustConfig,
    ) -> Self {
        SwitchPolicy {
            expected_rows,
            band_hi: expected_rows * band_factor + CARDINALITY_NOISE_ROWS,
            margin: choice.margin,
            cfg,
        }
    }

    /// The policy that never trips (margin ∞, zero penalty, infinite
    /// band): adaptive execution under it is bit-identical to the static
    /// executor.
    pub fn never() -> Self {
        SwitchPolicy {
            expected_rows: 0.0,
            band_hi: f64::INFINITY,
            margin: f64::INFINITY,
            cfg: RobustConfig { tail_quantile: 1.0, penalty_weight: 0.0 },
        }
    }

    /// Whether `observed` rows at the checkpoint warrant reconsidering.
    /// Monotone in `observed`; always false at margin = ∞ or
    /// `penalty_weight <= 0`.
    pub fn should_switch(&self, observed: u64) -> bool {
        self.cfg.penalty_weight > 0.0 && self.margin.is_finite() && (observed as f64) > self.band_hi
    }

    /// Once tripped and re-costed: switching pays iff the corrected cost
    /// of continuing exceeds the corrected cost of the alternative by more
    /// than the hedging slack `margin / penalty_weight` — the more
    /// decisively the incumbent won at compile time (large margin), and
    /// the less the caller prices bad outcomes (small penalty), the more
    /// evidence a switch needs.
    pub fn switch_pays(&self, remaining: f64, alternative: f64) -> bool {
        // A NaN penalty weight must land in the degenerate never-switch arm,
        // so compare via partial_cmp rather than `> 0.0`.
        let positive_penalty =
            self.cfg.penalty_weight.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if !positive_penalty || !self.margin.is_finite() {
            return false;
        }
        remaining > alternative + self.margin / self.cfg.penalty_weight
    }
}

/// A [`SwitchController`] that arms one checkpoint of the chosen plan and
/// bails to a fallback plan when the [`SwitchPolicy`] trips *and* the
/// re-costed comparison says abandoning pays.
pub struct BailController<'a> {
    /// The armed checkpoint (observations elsewhere are ignored).
    pub at: CheckpointKind,
    /// The trip predicate.
    pub policy: SwitchPolicy,
    /// The plan to bail to (typically the choice-free MDAM plan).
    pub fallback: PlanSpec,
    /// Re-cost both courses at the observed cardinality: returns
    /// `(remaining cost of continuing, cost of the fallback plan)` in
    /// model seconds.
    recost: Box<dyn Fn(u64) -> (f64, f64) + Send + Sync + 'a>,
}

impl<'a> BailController<'a> {
    /// Assemble a controller from its parts (the two-predicate catalog
    /// constructor is [`two_pred_bail_controller`]).
    pub fn new(
        at: CheckpointKind,
        policy: SwitchPolicy,
        fallback: PlanSpec,
        recost: impl Fn(u64) -> (f64, f64) + Send + Sync + 'a,
    ) -> Self {
        BailController { at, policy, fallback, recost: Box::new(recost) }
    }
}

impl SwitchController for BailController<'_> {
    fn decide(&self, obs: &Observation) -> SwitchDirective {
        if obs.kind != self.at || !self.policy.should_switch(obs.rows) {
            return SwitchDirective::Continue;
        }
        let (remaining, alternative) = (self.recost)(obs.rows);
        if self.policy.switch_pays(remaining, alternative) {
            SwitchDirective::Bail(self.fallback.clone())
        } else {
            SwitchDirective::Continue
        }
    }
}

/// Build the bail-out controller for a chosen two-predicate plan:
///
/// * an `IndexFetch` plan arms its [`CheckpointKind::RidFeed`] — the rid
///   count reveals the true cardinality of everything applied *before*
///   the fetch: the leading column's marginal for a bare single-column
///   range, or the full *conjunction* when a `key_filter` prunes the
///   composite-index scan (System B's plans) — the latter is exactly the
///   number the independence assumption gets wrong on correlated columns;
/// * an `IndexIntersect` plan arms its [`CheckpointKind::IntersectOut`] —
///   the surviving-rid count likewise reveals the true conjunction
///   cardinality;
/// * an `Mdam` plan arms its [`CheckpointKind::ScanOut`] milestones — the
///   produced count is only a *floor* on the conjunction, but a floor
///   above the credible band already falsifies the estimate, and the
///   controller then re-plans at the Fréchet upper bound
///   `min(sel_a, sel_b)` (the robust end of what stays consistent with
///   the exact marginals) rather than at a point the observation just
///   discredited;
/// * plans without an observable point before their work is done (table
///   scan, plain covering scans) return `None`.
///
/// The re-costing substitutes the observed cardinality into the same
/// [`estimate_cost`]/[`estimate_fetch`] formulas the compile-time choice
/// used (Fréchet-clamped to stay coherent), so the mid-flight decision is
/// the compile-time decision with one estimate replaced by ground truth.
pub fn two_pred_bail_controller<'a>(
    chosen: &PlanSpec,
    choice: &Choice,
    fallback: PlanSpec,
    stats: &'a CatalogStats,
    est: SelEstimates,
    model: &'a CostModel,
    cfg: RobustConfig,
) -> Option<BailController<'a>> {
    two_pred_bail_controller_banded(
        chosen,
        choice,
        fallback,
        stats,
        est,
        model,
        cfg,
        DEFAULT_BAND_FACTOR,
    )
}

/// [`two_pred_bail_controller`] with an explicit credible-band factor.
/// The default factor treats a factor-2 cardinality surprise as the edge
/// of credibility; an experiment whose known estimation failure sits *at*
/// that factor (e.g. an independence conjunction at marginal selectivity
/// 1/2, wrong by exactly `1/max(sel_a, sel_b)` = 2) arms a tighter band —
/// the [`CARDINALITY_NOISE_ROWS`] floor still protects tiny expectations.
#[allow(clippy::too_many_arguments)]
pub fn two_pred_bail_controller_banded<'a>(
    chosen: &PlanSpec,
    choice: &Choice,
    fallback: PlanSpec,
    stats: &'a CatalogStats,
    est: SelEstimates,
    model: &'a CostModel,
    cfg: RobustConfig,
    band_factor: f64,
) -> Option<BailController<'a>> {
    /// What the armed checkpoint's row count measures.
    #[derive(Clone, Copy)]
    enum Reveals {
        LeadingA,
        LeadingB,
        Conjunction,
        /// A mid-scan floor on the conjunction (MDAM milestones).
        ConjunctionFloor,
    }
    /// What the remaining pipeline is, for re-costing.
    enum Tail {
        /// Fetch the pending rids with this discipline.
        Fetch(FetchKind),
        /// Finish (in practice: re-run) this scan — approximated by its
        /// full corrected cost, since milestones trip shortly past the
        /// credible band, early in the corrected total.
        Rescan(PlanSpec),
    }
    let rows = stats.rows;
    let (at, expected, tail, reveals) = match chosen {
        PlanSpec::IndexFetch { scan, key_filter, fetch, .. } => {
            if key_filter.terms().is_empty() {
                let (sel, rev) = match stats.leading_column(scan.index) {
                    Some(c) if c == COL_A => (est.sel_a, Reveals::LeadingA),
                    Some(c) if c == COL_B => (est.sel_b, Reveals::LeadingB),
                    _ => (1.0, Reveals::LeadingA),
                };
                (CheckpointKind::RidFeed, sel * rows, Tail::Fetch(*fetch), rev)
            } else {
                // The key filter runs before the fetch, so the rid feed
                // counts the conjunction's survivors.
                (
                    CheckpointKind::RidFeed,
                    est.sel_ab * rows,
                    Tail::Fetch(*fetch),
                    Reveals::Conjunction,
                )
            }
        }
        PlanSpec::IndexIntersect { fetch, .. } => (
            CheckpointKind::IntersectOut,
            est.sel_ab * rows,
            Tail::Fetch(*fetch),
            Reveals::Conjunction,
        ),
        PlanSpec::Mdam { .. } => (
            CheckpointKind::ScanOut,
            est.sel_ab * rows,
            Tail::Rescan(chosen.clone()),
            Reveals::ConjunctionFloor,
        ),
        _ => return None,
    };
    let policy = SwitchPolicy::from_choice(choice, expected, band_factor, cfg);
    let fb = fallback.clone();
    let recost = move |observed: u64| {
        let obs = observed as f64;
        let corrected = match reveals {
            // A leading marginal: rescale the conjunction proportionally,
            // Fréchet-clamped.
            Reveals::LeadingA | Reveals::LeadingB => {
                let sel_lead = clamp_sel(obs / rows);
                let (sel_a, sel_b, prior) = if matches!(reveals, Reveals::LeadingA) {
                    (sel_lead, est.sel_b, est.sel_a)
                } else {
                    (est.sel_a, sel_lead, est.sel_b)
                };
                let sel_ab = frechet_clamp(sel_a, sel_b, est.sel_ab * (sel_lead / prior));
                SelEstimates { sel_a, sel_b, sel_ab }
            }
            // The true conjunction cardinality, observed directly.
            Reveals::Conjunction => SelEstimates {
                sel_a: est.sel_a,
                sel_b: est.sel_b,
                sel_ab: frechet_clamp(est.sel_a, est.sel_b, clamp_sel(obs / rows)),
            },
            // Only a floor — but one the credible band ruled out, so the
            // point estimate is falsified and the correction hedges to the
            // Fréchet upper bound (never below the floor itself).
            Reveals::ConjunctionFloor => SelEstimates {
                sel_a: est.sel_a,
                sel_b: est.sel_b,
                sel_ab: frechet_clamp(
                    est.sel_a,
                    est.sel_b,
                    est.sel_a.min(est.sel_b).max(clamp_sel(obs / rows)),
                ),
            },
        };
        // What continuing costs: fetching the pending rids (plus their
        // row CPU) — the prefix that produced them is sunk either way —
        // or, for a tripped scan, finishing it at the corrected estimate.
        let remaining = match &tail {
            Tail::Fetch(fetch) => estimate_fetch(obs, stats, fetch, model) + obs * model.cpu_row,
            Tail::Rescan(spec) => estimate_cost(spec, stats, &corrected, model),
        };
        (remaining, estimate_cost(&fb, stats, &corrected, model))
    };
    Some(BailController::new(at, policy, fallback, recost))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choice_with_margin(margin: f64) -> Choice {
        Choice {
            plan: 0,
            name: "p".to_string(),
            score: 1.0,
            expected: 1.0,
            tail: 1.0,
            runner_up: Some(1),
            margin,
        }
    }

    #[test]
    fn trip_is_monotone_and_floored_by_noise() {
        let p = SwitchPolicy::from_choice(
            &choice_with_margin(0.1),
            100.0,
            DEFAULT_BAND_FACTOR,
            RobustConfig::default(),
        );
        assert!(!p.should_switch(100));
        assert!(!p.should_switch(216), "band edge 2*100+16 is inclusive");
        assert!(p.should_switch(217));
        assert!(p.should_switch(10_000), "monotone above the edge");
        // Tiny expectations are protected by the absolute noise floor.
        let tiny = SwitchPolicy::from_choice(
            &choice_with_margin(0.1),
            0.25,
            DEFAULT_BAND_FACTOR,
            RobustConfig::default(),
        );
        assert!(!tiny.should_switch(3), "a few noise rows above ~0 must not trip");
    }

    #[test]
    fn degenerate_policies_never_switch() {
        let inf_margin = SwitchPolicy::from_choice(
            &choice_with_margin(f64::INFINITY),
            100.0,
            DEFAULT_BAND_FACTOR,
            RobustConfig::default(),
        );
        let zero_penalty = SwitchPolicy::from_choice(
            &choice_with_margin(0.1),
            100.0,
            DEFAULT_BAND_FACTOR,
            RobustConfig { tail_quantile: 0.9, penalty_weight: 0.0 },
        );
        for obs in [0u64, 1_000, u64::MAX] {
            assert!(!inf_margin.should_switch(obs));
            assert!(!zero_penalty.should_switch(obs));
            assert!(!SwitchPolicy::never().should_switch(obs));
        }
        assert!(!inf_margin.switch_pays(f64::MAX, 0.0));
        assert!(!zero_penalty.switch_pays(f64::MAX, 0.0));
    }

    #[test]
    fn switch_pays_requires_beating_the_margin_slack() {
        let p = SwitchPolicy::from_choice(
            &choice_with_margin(1.0),
            100.0,
            DEFAULT_BAND_FACTOR,
            RobustConfig { tail_quantile: 0.9, penalty_weight: 0.5 },
        );
        // Slack = margin / penalty = 2.0.
        assert!(!p.switch_pays(5.0, 4.0), "within the slack: stay");
        assert!(!p.switch_pays(6.0, 4.0), "exactly the slack: stay");
        assert!(p.switch_pays(6.1, 4.0), "beyond the slack: switch");
    }

    #[test]
    fn mdam_plans_arm_scan_out_milestones() {
        use robustmap_workload::{TableBuilder, WorkloadConfig};

        let w = TableBuilder::build(WorkloadConfig::with_rows(1 << 14));
        let stats = CatalogStats::of(&w);
        let model = CostModel::default();
        let plans = crate::two_predicate_plans(crate::SystemId::C, &w);
        let mdam = plans.iter().find(|p| p.name.contains("mdam(a,b)")).unwrap();
        let scan_b = plans.iter().find(|p| p.name.contains("covering(b,a) scan")).unwrap();
        // A wide leading marginal and a tiny trailing one: once the
        // conjunction estimate is falsified, the Fréchet-upper-bound
        // correction makes finishing the MDAM clearly dearer than the
        // b-leading covering scan.  With sel_a = 0.5 the independence error
        // at full correlation is exactly a factor 2, so the rho=1 floor sits
        // inside the default band — the tightened band is what catches it.
        let (sel_a, sel_b) = (0.5, 1.0 / 64.0);
        let (ta, tb) = (w.cal_a.threshold(sel_a), w.cal_b.threshold(sel_b));
        let est = SelEstimates { sel_a, sel_b, sel_ab: sel_a * sel_b };
        let spec = mdam.build(ta, tb);
        let ctrl = two_pred_bail_controller_banded(
            &spec,
            &choice_with_margin(1e-6),
            scan_b.build(ta, tb),
            &stats,
            est,
            &model,
            RobustConfig::default(),
            1.5,
        )
        .expect("MDAM plans are observable");
        assert_eq!(ctrl.at, CheckpointKind::ScanOut);
        let expected = est.sel_ab * stats.rows; // 128 rows
        let below = (expected * 1.5 + CARDINALITY_NOISE_ROWS) as u64;
        assert!(matches!(
            ctrl.decide(&Observation { kind: CheckpointKind::ScanOut, rows: below }),
            SwitchDirective::Continue
        ));
        // The fully-correlated output floor, min(sel_a, sel_b) * rows = 256,
        // clears the band; the re-costed comparison says the switch pays.
        let tripped = (sel_a.min(sel_b) * stats.rows) as u64;
        assert!(matches!(
            ctrl.decide(&Observation { kind: CheckpointKind::ScanOut, rows: tripped }),
            SwitchDirective::Bail(_)
        ));
        // Covering scans stay unobservable.
        let scan_spec = scan_b.build(ta, tb);
        assert!(two_pred_bail_controller(
            &scan_spec,
            &choice_with_margin(1e-6),
            spec,
            &stats,
            est,
            &model,
            RobustConfig::default(),
        )
        .is_none());
    }

    #[test]
    fn controller_only_acts_at_its_armed_checkpoint() {
        let fallback = PlanSpec::TableScan {
            table: robustmap_storage::TableId(0),
            pred: robustmap_executor::Predicate::always_true(),
            project: robustmap_executor::Projection::All,
        };
        let policy = SwitchPolicy {
            expected_rows: 10.0,
            band_hi: 20.0,
            margin: 0.0,
            cfg: RobustConfig::default(),
        };
        // Continuing always looks 10x worse than the fallback.
        let ctrl = BailController::new(CheckpointKind::IntersectOut, policy, fallback, |o| {
            (o as f64, o as f64 / 10.0)
        });
        let at_armed = Observation { kind: CheckpointKind::IntersectOut, rows: 1_000 };
        assert!(matches!(ctrl.decide(&at_armed), SwitchDirective::Bail(_)));
        let below_band = Observation { kind: CheckpointKind::IntersectOut, rows: 15 };
        assert!(matches!(ctrl.decide(&below_band), SwitchDirective::Continue));
        let elsewhere = Observation { kind: CheckpointKind::RidFeed, rows: 1_000 };
        assert!(matches!(ctrl.decide(&elsewhere), SwitchDirective::Continue));
    }
}
