//! Admission control: the first contention-aware serving policy.
//!
//! The paper's §3 names "resources (memory, I/O bandwidth)" as run-time
//! conditions; when N queries arrive at once, *something* must decide which
//! of them run now, which wait, and how much memory each may hold.  An
//! [`AdmissionPolicy`] makes that decision three ways:
//!
//! * **run** — capacity is available: the query is admitted with its full
//!   requested grant;
//! * **shrink-grant** — the concurrency slot is free but the memory budget
//!   is nearly spent: the query is admitted with a reduced grant.  A
//!   shrunk grant is not cosmetic: [`apply_grant`] clamps every
//!   memory-consuming operator in the plan, so a hash join or sort that
//!   fit in memory under its planned grant now *spills* — exactly the
//!   discontinuity the paper's sort-spill maps visualize, now triggered by
//!   contention instead of data volume;
//! * **queue** — no slot, or so little memory that the query would thrash:
//!   the query waits FIFO until a completion releases capacity.
//!
//! The policy is deliberately a plain state machine (no clock, no
//! randomness): the deterministic scheduler in `core::serve` drives it,
//! and every decision replays identically on every run.

use robustmap_executor::PlanSpec;

/// Capacity limits an [`AdmissionPolicy`] enforces.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum queries in flight at once (0 = unbounded).
    pub max_in_flight: usize,
    /// Total memory grantable across in-flight queries, in bytes
    /// (0 = unbounded).
    pub memory_budget: usize,
    /// The grant each query requests (matching
    /// `core::MeasureConfig::memory_bytes` under which plans are costed).
    pub default_grant: usize,
    /// Smallest grant worth admitting with; below this the query queues
    /// for a completion instead of thrashing.
    pub min_grant: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_in_flight: 0,
            memory_budget: 0,
            default_grant: 8 << 20, // the measurement default per-query grant
            min_grant: 64 << 10,
        }
    }
}

/// One admission decision for the query at the head of the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admit now with `grant` bytes of memory (shrunk when below the
    /// requested default).
    Run {
        /// Memory grant in bytes.
        grant: usize,
    },
    /// Keep queued until a running query completes.
    Queue,
}

/// Tracks in-flight queries and outstanding grants, deciding run / shrink /
/// queue for each admission attempt.
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    cfg: AdmissionConfig,
    in_flight: usize,
    granted: usize,
}

impl AdmissionPolicy {
    /// A policy enforcing `cfg`, with nothing in flight.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionPolicy { cfg, in_flight: 0, granted: 0 }
    }

    /// Decide for the next queued query.  On [`AdmissionDecision::Run`]
    /// the policy records the admission; the caller must later
    /// [`release`](Self::release) the same grant.
    ///
    /// An idle system always admits (with at least the minimum grant, even
    /// past an exhausted budget): queueing with nothing in flight would
    /// deadlock, and a lone query cannot thrash anyone else.
    pub fn admit(&mut self) -> AdmissionDecision {
        if self.cfg.max_in_flight != 0 && self.in_flight >= self.cfg.max_in_flight {
            return AdmissionDecision::Queue;
        }
        let headroom = if self.cfg.memory_budget == 0 {
            usize::MAX
        } else {
            self.cfg.memory_budget.saturating_sub(self.granted)
        };
        let mut grant = self.cfg.default_grant.min(headroom);
        if grant < self.cfg.min_grant {
            if self.in_flight > 0 {
                return AdmissionDecision::Queue;
            }
            grant = self.cfg.min_grant.min(self.cfg.default_grant);
        }
        self.in_flight += 1;
        self.granted += grant;
        AdmissionDecision::Run { grant }
    }

    /// Record the completion of a query admitted with `grant` bytes.
    pub fn release(&mut self, grant: usize) {
        debug_assert!(self.in_flight > 0, "release without admission");
        self.in_flight -= 1;
        self.granted = self.granted.saturating_sub(grant);
    }

    /// Queries currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Bytes currently granted to in-flight queries.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

/// Clamp every memory-consuming operator of `spec` to `grant` bytes,
/// recursively.  Operators that fit under the grant keep their planned
/// budget; a shrunk grant forces the spill path (graceful or abrupt per
/// the operator's [`robustmap_executor::SpillMode`]).
pub fn apply_grant(spec: &PlanSpec, grant: usize) -> PlanSpec {
    match spec {
        PlanSpec::Join { left, right, left_key, right_key, algo, memory_bytes, project } => {
            PlanSpec::Join {
                left: Box::new(apply_grant(left, grant)),
                right: Box::new(apply_grant(right, grant)),
                left_key: *left_key,
                right_key: *right_key,
                algo: *algo,
                memory_bytes: (*memory_bytes).min(grant),
                project: project.clone(),
            }
        }
        PlanSpec::Sort { input, key_cols, mode, memory_bytes } => PlanSpec::Sort {
            input: Box::new(apply_grant(input, grant)),
            key_cols: key_cols.clone(),
            mode: *mode,
            memory_bytes: (*memory_bytes).min(grant),
        },
        PlanSpec::HashAgg { input, group_cols, aggs, mode, memory_bytes } => PlanSpec::HashAgg {
            input: Box::new(apply_grant(input, grant)),
            group_cols: group_cols.clone(),
            aggs: aggs.clone(),
            mode: *mode,
            memory_bytes: (*memory_bytes).min(grant),
        },
        // Leaf and fetch-shaped operators hold no operator memory grant.
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_in_flight: usize, budget: usize) -> AdmissionConfig {
        AdmissionConfig {
            max_in_flight,
            memory_budget: budget,
            default_grant: 8 << 20,
            min_grant: 1 << 14,
        }
    }

    #[test]
    fn slots_gate_admission_fifo() {
        let mut p = AdmissionPolicy::new(cfg(2, 0));
        assert_eq!(p.admit(), AdmissionDecision::Run { grant: 8 << 20 });
        assert_eq!(p.admit(), AdmissionDecision::Run { grant: 8 << 20 });
        assert_eq!(p.admit(), AdmissionDecision::Queue);
        p.release(8 << 20);
        assert_eq!(p.admit(), AdmissionDecision::Run { grant: 8 << 20 });
        assert_eq!(p.in_flight(), 2);
    }

    #[test]
    fn budget_shrinks_then_queues() {
        // Budget fits one full grant plus a 16 KiB sliver: the second
        // query is admitted shrunk, the third queues.
        let mut p = AdmissionPolicy::new(cfg(0, (8 << 20) + (1 << 14)));
        assert_eq!(p.admit(), AdmissionDecision::Run { grant: 8 << 20 });
        assert_eq!(p.admit(), AdmissionDecision::Run { grant: 1 << 14 });
        assert_eq!(p.admit(), AdmissionDecision::Queue);
        p.release(8 << 20);
        assert_eq!(p.admit(), AdmissionDecision::Run { grant: 8 << 20 });
    }

    #[test]
    fn idle_system_always_admits() {
        let mut p = AdmissionPolicy::new(cfg(0, 1)); // absurd 1-byte budget
        match p.admit() {
            AdmissionDecision::Run { grant } => assert_eq!(grant, 1 << 14),
            AdmissionDecision::Queue => panic!("idle system must admit"),
        }
        assert_eq!(p.admit(), AdmissionDecision::Queue);
    }

    #[test]
    fn apply_grant_clamps_recursively_and_preserves_small_budgets() {
        use robustmap_executor::{
            ColRange, JoinAlgo, Predicate, Projection, SpillMode,
        };
        use robustmap_storage::TableId;
        let scan = PlanSpec::TableScan {
            table: TableId(0),
            pred: Predicate::single(ColRange::at_most(0, 10)),
            project: Projection::All,
        };
        let spec = PlanSpec::Join {
            left: Box::new(PlanSpec::Sort {
                input: Box::new(scan.clone()),
                key_cols: vec![0],
                mode: SpillMode::Graceful,
                memory_bytes: 4 << 20,
            }),
            right: Box::new(scan),
            left_key: 0,
            right_key: 0,
            algo: JoinAlgo::Hash { build_left: true },
            memory_bytes: 8 << 20,
            project: Projection::All,
        };
        let shrunk = apply_grant(&spec, 1 << 20);
        match &shrunk {
            PlanSpec::Join { memory_bytes, left, .. } => {
                assert_eq!(*memory_bytes, 1 << 20);
                match left.as_ref() {
                    PlanSpec::Sort { memory_bytes, .. } => assert_eq!(*memory_bytes, 1 << 20),
                    other => panic!("unexpected shape: {other:?}"),
                }
            }
            other => panic!("unexpected shape: {other:?}"),
        }
        // A generous grant leaves planned budgets untouched.
        assert_eq!(apply_grant(&spec, 64 << 20), spec);
    }

    #[test]
    fn shrunk_grant_forces_sort_spill() {
        use robustmap_executor::{
            execute_count, ColRange, ExecCtx, PlanSpec, Predicate, Projection, SpillMode,
        };
        use robustmap_storage::Session;
        use robustmap_workload::{TableBuilder, WorkloadConfig};
        let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 12));
        let spec = PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan {
                table: w.table,
                pred: Predicate::single(ColRange::at_most(0, w.cal_a.threshold(1.0))),
                project: Projection::All,
            }),
            key_cols: vec![1],
            mode: SpillMode::Abrupt,
            memory_bytes: 8 << 20,
        };
        let run = |plan: &PlanSpec, memory: usize| {
            let s = Session::with_pool_pages(256);
            let ctx = ExecCtx::new(&w.db, &s, memory);
            execute_count(plan, &ctx).expect("well-formed")
        };
        // Under the planned grant the sort fits in memory...
        assert!(!run(&spec, 8 << 20).spilled);
        // ...under a shrunk grant the same query spills.
        let shrunk = apply_grant(&spec, 1 << 14);
        assert!(run(&shrunk, 1 << 14).spilled);
    }
}
