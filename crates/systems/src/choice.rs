//! The unified plan-choice API: *where estimates come from* separated
//! from *how a plan is picked from them*.
//!
//! The paper's premise is that compile-time plan choice goes wrong under
//! estimation error (§1); PARQO (Xiu et al. 2024) frames robust selection
//! as a policy over an estimate distribution, orthogonal to the estimate
//! source.  This module encodes that split:
//!
//! * an [`Estimator`] answers "what does the catalog believe about
//!   `(ta, tb)`" — a point estimate ([`Estimator::estimate`]) and a
//!   weighted uncertainty region ([`Estimator::region`]).  Implementations
//!   range from [`Exact`] (true marginals, independence conjunction)
//!   through [`WithError`] and [`Histogram`] to [`Joint`] (two-column
//!   statistics whose region width *scales with observed sample
//!   variance*, not just the fixed bucket-resolution box);
//! * a [`ChoicePolicy`] answers "given those beliefs, which plan" —
//!   [`ChoicePolicy::Point`] is the textbook argmin of estimated cost
//!   (bit-identical to the legacy `choose_plan`, pinned by test), and
//!   [`ChoicePolicy::Robust`] minimizes `expected + penalty * tail` over
//!   the whole region (the penalty-aware criterion of `crate::robust`);
//! * a [`Chooser`] binds a plan catalog, catalog statistics, a cost model
//!   and a policy, and returns a rich [`Choice`] — chosen plan, score,
//!   expected/tail costs, runner-up and margin — instead of a bare index,
//!   so experiments can map *how close* a decision was, not just what it
//!   was.
//!
//! The legacy free functions (`optimizer::choose_plan`,
//! `robust::choose_plan_robust`, `robust::choose_plan_with_joint`) are
//! deprecated shims over this API.

use robustmap_storage::CostModel;
use robustmap_workload::{
    Calibrator, EquiDepthHistogram, JointHistogram, MaintainedJoint, Staleness, Workload,
};

use crate::optimizer::{estimate_cost, frechet_clamp, CatalogStats, SelEstimates};
use crate::robust::{
    credible_region, credible_region_around, region_cost, RobustConfig, SelHypothesis,
};
use crate::two_pred::TwoPredPlan;

/// A source of selectivity beliefs for the two-predicate query.
///
/// `estimate` is the single best guess; `region` is the set of hypotheses
/// the statistics cannot distinguish from it, with plausibility weights
/// summing to 1.  The default `region` is the point estimate alone —
/// estimators without an uncertainty model degrade gracefully under a
/// robust policy (which then degenerates toward point selection).
pub trait Estimator {
    /// The point estimate at predicate constants `(ta, tb)`.
    fn estimate(&self, ta: i64, tb: i64) -> SelEstimates;

    /// The weighted uncertainty region around the estimate (weights sum
    /// to 1; every hypothesis coherent, i.e. inside the Fréchet bounds).
    fn region(&self, ta: i64, tb: i64) -> Vec<SelHypothesis> {
        vec![SelHypothesis { est: self.estimate(ta, tb), weight: 1.0 }]
    }
}

/// Fixed estimates are a (degenerate) estimator: handy for tests and for
/// callers that computed a [`SelEstimates`] some other way.
impl Estimator for SelEstimates {
    fn estimate(&self, _ta: i64, _tb: i64) -> SelEstimates {
        *self
    }
}

/// Exact marginal selectivities from the workload's calibrators; the
/// conjunction still assumes independence — exactly what a perfect
/// single-column catalog knows, and the baseline the correlated
/// experiments break.
pub struct Exact<'w> {
    cal_a: &'w Calibrator,
    cal_b: &'w Calibrator,
}

impl<'w> Exact<'w> {
    /// The exact estimator of a built workload.
    pub fn of(w: &'w Workload) -> Self {
        Exact { cal_a: &w.cal_a, cal_b: &w.cal_b }
    }
}

impl Estimator for Exact<'_> {
    fn estimate(&self, ta: i64, tb: i64) -> SelEstimates {
        SelEstimates::exact(self.cal_a.selectivity(ta), self.cal_b.selectivity(tb))
    }
}

/// Exact marginals distorted by a multiplicative error factor per column
/// (`> 1` over-estimates, `< 1` under-estimates) — the injected
/// "errors in cardinality estimation" sweep of `ext_optimizer`.
pub struct WithError<'w> {
    exact: Exact<'w>,
    /// Multiplicative error applied to the `a` marginal.
    pub error_a: f64,
    /// Multiplicative error applied to the `b` marginal.
    pub error_b: f64,
}

impl<'w> WithError<'w> {
    /// An error-distorted estimator over a built workload.
    pub fn of(w: &'w Workload, error_a: f64, error_b: f64) -> Self {
        WithError { exact: Exact::of(w), error_a, error_b }
    }
}

impl Estimator for WithError<'_> {
    fn estimate(&self, ta: i64, tb: i64) -> SelEstimates {
        SelEstimates::with_error(
            self.exact.cal_a.selectivity(ta),
            self.exact.cal_b.selectivity(tb),
            self.error_a,
            self.error_b,
        )
    }
}

/// Per-column equi-depth catalog histograms (independence conjunction):
/// how a real optimizer obtains estimates, with error governed by bucket
/// count and staleness.
pub struct Histogram<'h> {
    hist_a: &'h EquiDepthHistogram,
    hist_b: &'h EquiDepthHistogram,
}

impl<'h> Histogram<'h> {
    /// An estimator over two catalog histograms.
    pub fn new(hist_a: &'h EquiDepthHistogram, hist_b: &'h EquiDepthHistogram) -> Self {
        Histogram { hist_a, hist_b }
    }
}

impl Estimator for Histogram<'_> {
    fn estimate(&self, ta: i64, tb: i64) -> SelEstimates {
        SelEstimates::from_histograms(self.hist_a, self.hist_b, ta, tb)
    }
}

/// Two-column joint statistics: marginals from the sample's per-column
/// histograms, the conjunction from observed co-occurrence — no
/// independence assumption.
///
/// Its [`Estimator::region`] is the credible box of `crate::robust`, but
/// with *variance-adaptive* half-widths: per axis the width is the larger
/// of the bucket resolution (the representational floor — the statistics
/// cannot distinguish selectivities closer than a bucket) and `z`
/// standard errors of the sampled estimate (the statistical floor — a
/// sparse sample is uncertain far beyond its bucket grid).  With a
/// plentiful sample this degenerates to the fixed bucket-resolution box;
/// with a sparse one the region widens with the observed sample variance,
/// exactly the adaptive hedging the ROADMAP called for.
pub struct Joint<'j> {
    joint: &'j JointHistogram,
    /// Credible-band width in standard errors of the sampled estimate
    /// (default 2 — a ~95% band under the normal approximation).
    pub z: f64,
}

impl<'j> Joint<'j> {
    /// An estimator over built joint statistics, with the default band.
    pub fn new(joint: &'j JointHistogram) -> Self {
        Joint { joint, z: 2.0 }
    }

    /// The underlying statistics.
    pub fn stats(&self) -> &'j JointHistogram {
        self.joint
    }

    /// The half-widths its region hedges over at `(ta, tb)`:
    /// `max(bucket resolution, z * stderr)` per axis.
    pub fn radii(&self, ta: i64, tb: i64) -> (f64, f64) {
        let ra = self.joint.resolution_a().max(self.z * self.joint.sel_variance_a(ta).sqrt());
        let rb = self.joint.resolution_b().max(self.z * self.joint.sel_variance_b(tb).sqrt());
        (ra, rb)
    }
}

impl Estimator for Joint<'_> {
    fn estimate(&self, ta: i64, tb: i64) -> SelEstimates {
        SelEstimates::from_joint(self.joint, ta, tb)
    }

    fn region(&self, ta: i64, tb: i64) -> Vec<SelHypothesis> {
        let (ra, rb) = self.radii(ta, tb);
        credible_region(self.joint, ta, tb, ra, rb)
    }
}

/// Staleness-inflated per-axis half-width: the larger of the bucket
/// resolution and `z` standard errors, where the variance is the sampling
/// variance *plus* the churned mass's worth of Bernoulli variance —
/// `var + severity * p(1-p)`.  At severity 0 this is exactly [`Joint`]'s
/// width; as the modified fraction (amplified by drift) approaches 1 the
/// standard error approaches the full population standard deviation,
/// i.e. "the statistic tells us almost nothing beyond the mean".
fn stale_radius(resolution: f64, z: f64, var: f64, p: f64, severity: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    resolution.max(z * (var + severity.clamp(0.0, 1.0) * p * (1.0 - p)).sqrt())
}

/// Frozen joint statistics known to be stale: the estimate is the base's
/// (wrong under churn — that is the point), but the credible region
/// widens with the [`Staleness`] meter, so [`ChoicePolicy::Robust`]
/// hedges harder the longer the statistics go unmaintained.
///
/// Same shape as [`Joint`]'s variance-adaptive half-widths, with the
/// variance inflated by [`Staleness::severity`] (see `stale_radius`).
pub struct Stale<'j> {
    joint: &'j JointHistogram,
    /// The staleness meter driving the widening.
    pub staleness: Staleness,
    /// Credible-band width in standard errors (default 2, as [`Joint`]).
    pub z: f64,
}

impl<'j> Stale<'j> {
    /// A stale-aware estimator over frozen statistics and a meter reading.
    pub fn new(joint: &'j JointHistogram, staleness: Staleness) -> Self {
        Stale { joint, staleness, z: 2.0 }
    }

    /// The staleness-widened half-widths at `(ta, tb)`.
    pub fn radii(&self, ta: i64, tb: i64) -> (f64, f64) {
        let s = self.staleness.severity();
        let ra = stale_radius(
            self.joint.resolution_a(),
            self.z,
            self.joint.sel_variance_a(ta),
            self.joint.marginal_a().estimate_at_most(ta),
            s,
        );
        let rb = stale_radius(
            self.joint.resolution_b(),
            self.z,
            self.joint.sel_variance_b(tb),
            self.joint.marginal_b().estimate_at_most(tb),
            s,
        );
        (ra, rb)
    }
}

impl Estimator for Stale<'_> {
    fn estimate(&self, ta: i64, tb: i64) -> SelEstimates {
        SelEstimates::from_joint(self.joint, ta, tb)
    }

    fn region(&self, ta: i64, tb: i64) -> Vec<SelHypothesis> {
        let (ra, rb) = self.radii(ta, tb);
        credible_region(self.joint, ta, tb, ra, rb)
    }
}

/// Incrementally maintained joint statistics
/// ([`robustmap_workload::stats_maint::MaintainedJoint`]): the point
/// estimate folds the per-bucket deltas in, so it tracks the churned
/// table; the region keeps the base's variance-adaptive widths (the
/// deltas fix the *mean*, not the within-bucket placement, so the
/// resolution floor still applies) around the corrected center.
pub struct Maintained<'m> {
    stats: &'m MaintainedJoint,
    /// Credible-band width in standard errors (default 2, as [`Joint`]).
    pub z: f64,
}

impl<'m> Maintained<'m> {
    /// An estimator over maintained statistics.
    pub fn new(stats: &'m MaintainedJoint) -> Self {
        Maintained { stats, z: 2.0 }
    }

    /// The underlying maintained statistics.
    pub fn stats(&self) -> &'m MaintainedJoint {
        self.stats
    }

    fn radii(&self, ta: i64, tb: i64) -> (f64, f64) {
        let base = self.stats.base();
        let ra = base.resolution_a().max(self.z * base.sel_variance_a(ta).sqrt());
        let rb = base.resolution_b().max(self.z * base.sel_variance_b(tb).sqrt());
        (ra, rb)
    }
}

impl Estimator for Maintained<'_> {
    fn estimate(&self, ta: i64, tb: i64) -> SelEstimates {
        let sel_a = self.stats.estimate_a(ta);
        let sel_b = self.stats.estimate_b(tb);
        let sel_ab = frechet_clamp(sel_a, sel_b, self.stats.estimate_ab(ta, tb));
        SelEstimates { sel_a, sel_b, sel_ab }
    }

    fn region(&self, ta: i64, tb: i64) -> Vec<SelHypothesis> {
        let (ra, rb) = self.radii(ta, tb);
        credible_region_around(self.estimate(ta, tb), ra, rb)
    }
}

/// How a [`Chooser`] turns estimates into a decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChoicePolicy {
    /// Argmin of estimated cost at the point estimate — the textbook
    /// optimizer, bit-identical to the legacy `choose_plan`.
    Point,
    /// Argmin of `expected + penalty_weight * tail` over the estimator's
    /// whole uncertainty region — the penalty-aware robust criterion.
    Robust(RobustConfig),
}

/// One plan decision, with enough context to judge it: the winner, its
/// score decomposition, and how close the call was.
#[derive(Debug, Clone, PartialEq)]
pub struct Choice {
    /// Index of the chosen plan in the chooser's catalog.
    pub plan: usize,
    /// The chosen plan's name (map series label).
    pub name: String,
    /// The minimized objective (point: estimated cost; robust:
    /// `expected + penalty_weight * tail`).
    pub score: f64,
    /// Expected estimated cost over the hypothesis region (equals `score`
    /// under the point policy).
    pub expected: f64,
    /// Tail-quantile estimated cost over the region (equals the point
    /// cost under the point policy).
    pub tail: f64,
    /// The best alternative plan, if the catalog has more than one.
    pub runner_up: Option<usize>,
    /// Score gap to the runner-up (`>= 0`; 0 when there is no
    /// alternative).  Small margins mark cells where estimation error
    /// flips the decision.
    pub margin: f64,
}

impl Choice {
    /// Whether the decision was close: a runner-up exists and its score is
    /// within `threshold` (relative to the winning score) of the winner.
    ///
    /// This is the explicit predicate callers previously approximated with
    /// `margin > 0.0` checks — an approximation that misreads two edges:
    /// a **single-plan catalog** reports `margin == 0.0` only because
    /// there is nothing to lose to (not contested, whatever the
    /// threshold), while an **exact tie** between two plans also reports
    /// `margin == 0.0` and is maximally contested.
    pub fn is_contested(&self, threshold: f64) -> bool {
        match self.runner_up {
            None => false,
            Some(_) => self.margin <= threshold * self.score.abs().max(f64::MIN_POSITIVE),
        }
    }
}

/// A plan catalog bound to catalog statistics, a cost model and a
/// [`ChoicePolicy`]: the one object behind every chooser in the repo.
pub struct Chooser<'a> {
    /// The candidate plans (any slice of a system's catalog, or all 15).
    pub plans: &'a [TwoPredPlan],
    /// Catalog statistics feeding the cost formulas.
    pub stats: &'a CatalogStats,
    /// The cost model.
    pub model: &'a CostModel,
    /// The decision rule.
    pub policy: ChoicePolicy,
}

impl Chooser<'_> {
    /// Decide at `(ta, tb)` using `estimator` — the policy determines
    /// whether the point estimate or the whole region is consulted.
    pub fn choose<E: Estimator + ?Sized>(&self, estimator: &E, ta: i64, tb: i64) -> Choice {
        match self.policy {
            ChoicePolicy::Point => self.choose_at(&estimator.estimate(ta, tb), ta, tb),
            ChoicePolicy::Robust(_) => self.choose_over(&estimator.region(ta, tb), ta, tb),
        }
    }

    /// Point selection at explicit estimates: argmin of estimated cost,
    /// ties to the lower index — bit-identical to the legacy
    /// `choose_plan` (pinned by `tests/prop_choice.rs`).
    pub fn choose_at(&self, est: &SelEstimates, ta: i64, tb: i64) -> Choice {
        self.select(|plan| {
            let c = estimate_cost(&plan.build(ta, tb), self.stats, est, self.model);
            (c, c, c)
        })
    }

    /// Selection over an explicit hypothesis region.  Under the robust
    /// policy the score is `expected + penalty_weight * tail`; under the
    /// point policy the region is scored at its expectation (a
    /// single-hypothesis region thus reproduces `choose_at` exactly).
    pub fn choose_over(&self, region: &[SelHypothesis], ta: i64, tb: i64) -> Choice {
        let cfg = match self.policy {
            ChoicePolicy::Robust(cfg) => cfg,
            ChoicePolicy::Point => RobustConfig { tail_quantile: 1.0, penalty_weight: 0.0 },
        };
        self.select(|plan| {
            let (expected, tail) = region_cost(plan, ta, tb, self.stats, region, self.model, &cfg);
            (expected + cfg.penalty_weight * tail, expected, tail)
        })
    }

    /// Shared selection core: score every plan, pick the strict minimum
    /// (ties break to the lower index, deterministically — the legacy
    /// contract), and report the runner-up and margin.
    fn select(&self, score_of: impl Fn(&TwoPredPlan) -> (f64, f64, f64)) -> Choice {
        assert!(!self.plans.is_empty(), "empty plan catalog");
        let scored: Vec<(f64, f64, f64)> = self.plans.iter().map(score_of).collect();
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, &(score, _, _)) in scored.iter().enumerate() {
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        let mut runner_up = None;
        let mut runner_score = f64::INFINITY;
        for (i, &(score, _, _)) in scored.iter().enumerate() {
            if i != best && score < runner_score {
                runner_score = score;
                runner_up = Some(i);
            }
        }
        let (score, expected, tail) = scored[best];
        Choice {
            plan: best,
            name: self.plans[best].name.clone(),
            score,
            expected,
            tail,
            runner_up,
            margin: runner_up.map_or(0.0, |r| (scored[r].0 - score).max(0.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_pred::two_predicate_plans;
    use crate::SystemId;
    use robustmap_storage::CostModel;
    use robustmap_workload::gen::PredicateDistribution;
    use robustmap_workload::{JointHistogramConfig, TableBuilder, WorkloadConfig};

    fn setup() -> (Workload, CatalogStats, CostModel) {
        let w = TableBuilder::build(WorkloadConfig::with_rows(1 << 16));
        let stats = CatalogStats::of(&w);
        (w, stats, CostModel::hdd_2009())
    }

    #[test]
    fn exact_estimator_reports_calibrated_selectivities() {
        let (w, _, _) = setup();
        let est = Exact::of(&w);
        let (ta, tb) = (w.cal_a.threshold(0.25), w.cal_b.threshold(0.5));
        let e = est.estimate(ta, tb);
        assert!((e.sel_a - 0.25).abs() < 1e-9, "{}", e.sel_a);
        assert!((e.sel_b - 0.5).abs() < 1e-9, "{}", e.sel_b);
        assert!((e.sel_ab - 0.125).abs() < 1e-9, "independence conjunction");
        // The default region is the point alone.
        let region = est.region(ta, tb);
        assert_eq!(region.len(), 1);
        assert_eq!(region[0].est, e);
        assert_eq!(region[0].weight, 1.0);
    }

    #[test]
    fn with_error_estimator_distorts_the_exact_marginals() {
        let (w, _, _) = setup();
        let (ta, tb) = (w.cal_a.threshold(0.5), w.cal_b.threshold(0.5));
        let e = WithError::of(&w, 1.0 / 4.0, 1.0).estimate(ta, tb);
        assert!((e.sel_a - 0.125).abs() < 1e-9);
        assert!((e.sel_b - 0.5).abs() < 1e-9);
        // Zero-threshold estimates clamp like every constructor.
        let zero = WithError::of(&w, 1e-30, 1e-30).estimate(ta, tb);
        assert!(zero.sel_a > 0.0 && zero.sel_ab > 0.0);
    }

    #[test]
    fn joint_region_widens_with_sample_variance() {
        // The same correlated data at two sample sizes: the sparse sample
        // must hedge over a wider box than its bucket resolution, the
        // plentiful one collapses to the resolution floor.
        let w = TableBuilder::build(WorkloadConfig {
            rows: 1 << 14,
            seed: 77,
            predicate_dist: PredicateDistribution::CorrelatedHundredths(60),
            mutation_epoch: 0,
        });
        let sparse_stats = JointHistogram::from_workload(
            &w,
            &JointHistogramConfig { sample_target: 1 << 7, a_buckets: 8, b_buckets: 8, ..Default::default() },
        );
        let dense_stats = JointHistogram::from_workload(
            &w,
            &JointHistogramConfig { a_buckets: 8, b_buckets: 8, ..Default::default() },
        );
        let (ta, tb) = (w.cal_a.threshold(0.5), w.cal_b.threshold(0.5));
        let sparse = Joint::new(&sparse_stats);
        let dense = Joint::new(&dense_stats);
        let (ra_sparse, rb_sparse) = sparse.radii(ta, tb);
        let (ra_dense, rb_dense) = dense.radii(ta, tb);
        // At 2^7 samples and 8 coarse buckets the two floors are
        // comparable; the sparse radii can only be at or above the dense
        // ones, which sit on the resolution floor.
        assert!(ra_sparse >= ra_dense && rb_sparse >= rb_dense);
        assert_eq!(ra_dense, dense_stats.resolution_a(), "plentiful sample: resolution floor");
        // A very sparse sample with fine buckets is variance-dominated.
        let tiny_stats = JointHistogram::from_workload(
            &w,
            &JointHistogramConfig { sample_target: 1 << 6, ..Default::default() },
        );
        let tiny = Joint::new(&tiny_stats);
        let (ra_tiny, _) = tiny.radii(ta, tb);
        assert!(
            ra_tiny > tiny_stats.resolution_a(),
            "sparse sample must widen past the bucket box: {ra_tiny} vs {}",
            tiny_stats.resolution_a()
        );
        // Regions stay coherent probability boxes whatever the widths.
        for h in sparse.region(ta, tb) {
            assert!(h.est.sel_a > 0.0 && h.est.sel_a <= 1.0);
            assert!(h.est.sel_ab <= h.est.sel_a.min(h.est.sel_b) + 1e-12);
        }
    }

    #[test]
    fn point_chooser_reports_runner_up_and_nonnegative_margin() {
        let (w, stats, model) = setup();
        let plans = two_predicate_plans(SystemId::A, &w);
        let chooser = Chooser { plans: &plans, stats: &stats, model: &model, policy: ChoicePolicy::Point };
        let est = Exact::of(&w);
        for sel in [0.001, 0.1, 1.0] {
            let (ta, tb) = (w.cal_a.threshold(sel), w.cal_b.threshold(sel));
            let c = chooser.choose(&est, ta, tb);
            assert_eq!(c.name, plans[c.plan].name);
            assert!(c.margin >= 0.0);
            assert_eq!(c.expected, c.score, "point policy: score is the point cost");
            assert_eq!(c.tail, c.score);
            let r = c.runner_up.expect("seven plans have an alternative");
            assert_ne!(r, c.plan);
        }
    }

    #[test]
    fn single_plan_catalog_has_no_runner_up() {
        let (w, stats, model) = setup();
        let plans = two_predicate_plans(SystemId::C, &w);
        let chooser =
            Chooser { plans: &plans[..1], stats: &stats, model: &model, policy: ChoicePolicy::Point };
        let (ta, tb) = (w.cal_a.threshold(0.1), w.cal_b.threshold(0.1));
        let c = chooser.choose(&Exact::of(&w), ta, tb);
        assert_eq!(c.plan, 0);
        assert_eq!(c.runner_up, None);
        assert_eq!(c.margin, 0.0);
        // The margin is 0.0 only because there is nothing to lose to: a
        // single-plan decision is never contested, whatever the threshold.
        assert!(!c.is_contested(0.0));
        assert!(!c.is_contested(1.0));
        assert!(!c.is_contested(f64::INFINITY));
    }

    #[test]
    fn exact_tie_is_contested_at_zero_threshold() {
        let (w, stats, model) = setup();
        // Two copies of the same catalog plan: scores tie exactly, margin
        // is 0.0, and unlike the single-plan case the decision IS
        // maximally contested.
        let mut pair = two_predicate_plans(SystemId::C, &w);
        pair.truncate(1);
        pair.extend(two_predicate_plans(SystemId::C, &w).into_iter().take(1));
        let chooser =
            Chooser { plans: &pair, stats: &stats, model: &model, policy: ChoicePolicy::Point };
        let (ta, tb) = (w.cal_a.threshold(0.1), w.cal_b.threshold(0.1));
        let c = chooser.choose(&Exact::of(&w), ta, tb);
        assert_eq!(c.plan, 0, "ties break to the lower index");
        assert_eq!(c.runner_up, Some(1));
        assert_eq!(c.margin, 0.0);
        assert!(c.is_contested(0.0), "an exact tie is contested even at threshold 0");
        assert!(c.is_contested(0.1));
    }

    #[test]
    fn contested_threshold_scales_with_the_winning_score() {
        let (w, stats, model) = setup();
        let plans = two_predicate_plans(SystemId::A, &w);
        let chooser =
            Chooser { plans: &plans, stats: &stats, model: &model, policy: ChoicePolicy::Point };
        let (ta, tb) = (w.cal_a.threshold(0.1), w.cal_b.threshold(0.1));
        let c = chooser.choose(&Exact::of(&w), ta, tb);
        assert!(c.margin > 0.0, "distinct plans should not tie exactly here");
        // Relative threshold: contested exactly when margin <= t * score.
        let ratio = c.margin / c.score;
        assert!(c.is_contested(ratio * 2.0));
        assert!(!c.is_contested(ratio / 2.0));
    }

    #[test]
    fn robust_policy_consults_the_joint_region() {
        let w = TableBuilder::build(WorkloadConfig {
            rows: 1 << 14,
            seed: 31,
            predicate_dist: PredicateDistribution::CorrelatedHundredths(100),
            mutation_epoch: 0,
        });
        let stats = CatalogStats::of(&w);
        let model = CostModel::hdd_2009();
        let joint = JointHistogram::from_workload(&w, &JointHistogramConfig::default());
        let plans = two_predicate_plans(SystemId::A, &w);
        let est = Joint::new(&joint);
        let robust = Chooser {
            plans: &plans,
            stats: &stats,
            model: &model,
            policy: ChoicePolicy::Robust(RobustConfig::default()),
        };
        let (ta, tb) = (w.cal_a.threshold(0.25), w.cal_b.threshold(0.25));
        let c = robust.choose(&est, ta, tb);
        assert!(c.score >= c.expected, "penalty adds a nonnegative tail term");
        assert!(c.tail.is_finite() && c.expected.is_finite());
        assert!(c.margin >= 0.0);
    }
}
