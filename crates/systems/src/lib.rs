//! # robustmap-systems
//!
//! The three database systems of Graefe, Kuno & Wiener (CIDR 2009),
//! reconstructed as plan repertoires over one executor.
//!
//! The paper measures "three real systems" it anonymises as the first
//! system (Figures 1-7), System B (Figure 8) and System C (Figure 9).  The
//! observations are entirely about which *execution techniques* each system
//! offers, so the faithful substitution is three catalogs of physical plans
//! over our common substrate:
//!
//! * **System A** — single-column non-clustered indexes only.  Seven plans
//!   for the two-predicate selection: a table scan, two single-index
//!   improved-fetch plans, and four two-index intersections ({merge, hash}
//!   × {join orders}).  This is the "best of seven plans" baseline of
//!   Figure 7, and the system behind Figures 1, 2, 4 and 5.
//! * **System B** — has two-column indexes, but multi-version concurrency
//!   control is applied "only to rows in the main table", so *every* plan
//!   must fetch full rows; covering index plans are impossible.  Its
//!   signature technique is the bitmap-sorted fetch of Figure 8.
//! * **System C** — two-column indexes fully exploited with MDAM
//!   ("multi-dimensional B-tree access", \[LJBY95\]): covering, skip-scanning
//!   plans that stay "reasonable across the entire parameter space"
//!   (Figure 9).
//!
//! Plan factories are parameterised by the predicate constants, so the map
//! builder in `robustmap-core` can sweep selectivities without this crate
//! knowing anything about grids.
//!
//! Plan *choice* lives behind the [`choice`] module's Estimator /
//! ChoicePolicy split: estimators say what the catalog believes
//! (exact, error-injected, histogram, joint statistics), policies say how
//! to pick under those beliefs (point argmin or penalty-aware robust
//! hedging), and a [`Chooser`] binds a catalog to both.  The free
//! functions in [`optimizer`] and [`robust`] are deprecated shims over it.
//!
//! Run-time adaptivity lives in [`adaptive`]: a [`SwitchPolicy`] decides
//! when an observed cardinality discredits the compile-time choice, and a
//! [`BailController`] re-costs the remaining pipeline against the
//! choice-free fallback before telling the executor's adaptive layer to
//! switch mid-flight.
//!
//! Multi-query contention is governed by [`admission`]: an
//! [`AdmissionPolicy`] decides run / shrink-grant / queue for each arriving
//! query, and [`apply_grant`] clamps plan operators to a shrunk grant so
//! that contention — not just data volume — can push a plan over the
//! paper's spill cliffs.

pub mod adaptive;
pub mod admission;
pub mod choice;
pub mod optimizer;
pub mod robust;
pub mod single_pred;
pub mod system;
pub mod two_pred;

pub use admission::{apply_grant, AdmissionConfig, AdmissionDecision, AdmissionPolicy};
pub use adaptive::{
    two_pred_bail_controller, two_pred_bail_controller_banded, BailController, SwitchPolicy,
    CARDINALITY_NOISE_ROWS,
    DEFAULT_BAND_FACTOR,
};
pub use choice::{Choice, ChoicePolicy, Chooser, Estimator, Maintained, Stale};
#[allow(deprecated)] // the legacy shims stay importable while callers migrate
pub use optimizer::choose_plan;
pub use optimizer::{estimate_cost, estimate_fetch, CatalogStats, SelEstimates};
#[allow(deprecated)]
pub use robust::{choose_plan_robust, choose_plan_with_joint};
pub use robust::{credible_region, credible_region_around, uncertainty_region, RobustConfig, SelHypothesis};
pub use single_pred::{single_predicate_plans, SinglePredPlan, SinglePredPlanSet};
pub use system::{SystemId, SystemInfo};
pub use two_pred::{two_predicate_plans, TwoPredPlan};
