//! A deliberately conventional compile-time cost estimator and plan
//! chooser.
//!
//! The paper's framing: "Much existing research into robustness focuses on
//! poor plan choices during query optimization. ... In contrast and as a
//! complement to those efforts, we focus on the role of query execution
//! techniques." (§1)  To *measure* how much run-time robustness buys when
//! compile-time estimates go wrong, we need the thing that goes wrong: a
//! textbook optimizer that picks the cheapest plan under *estimated*
//! selectivities.
//!
//! The formulas below are intentionally the simple kind optimizers use
//! (linear page/row terms, independence assumptions, `min(rows, pages)`
//! caps) — their divergence from the measured maps under estimation error
//! is the subject of the `ext_optimizer` experiment, not a defect.

use robustmap_executor::{FetchKind, PlanSpec};
use robustmap_storage::CostModel;
use robustmap_workload::Workload;

use crate::two_pred::TwoPredPlan;

/// Compile-time selectivity estimates for the two predicate columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelEstimates {
    /// Estimated selectivity of `a <= ta`.
    pub sel_a: f64,
    /// Estimated selectivity of `b <= tb`.
    pub sel_b: f64,
    /// Estimated selectivity of the conjunction `a <= ta AND b <= tb`.
    /// The constructors without joint information fill in
    /// `sel_a * sel_b` — the textbook independence assumption;
    /// [`SelEstimates::from_joint`] replaces it with the two-column
    /// histogram's observed co-occurrence, which is where correlated
    /// columns stop fooling the cost formulas.
    pub sel_ab: f64,
}

/// Clamp a selectivity into `(0, 1]` — the range every cost formula
/// assumes (`with_error` documented this contract first; the histogram
/// paths and the robust chooser share it).
pub(crate) fn clamp_sel(s: f64) -> f64 {
    s.clamp(f64::MIN_POSITIVE, 1.0)
}

/// Clamp a joint selectivity into the Fréchet bounds
/// `[max(0, sel_a + sel_b - 1), min(sel_a, sel_b)]` — the coherence rule
/// shared by [`SelEstimates::from_joint`] and the robust chooser's
/// hypothesis grid.  The `.min(hi)` guards the float edge where
/// `(1 + x) - 1` rounds a hair above `x` and the bounds would cross.
pub(crate) fn frechet_clamp(sel_a: f64, sel_b: f64, sel_ab: f64) -> f64 {
    let hi = sel_a.min(sel_b);
    let lo = (sel_a + sel_b - 1.0).max(f64::MIN_POSITIVE).min(hi);
    sel_ab.clamp(lo, hi)
}

/// Minimum sampled rows of evidence before an observed co-occurrence is
/// trusted over the independence prior in [`SelEstimates::from_joint`] —
/// the usual minimum-support smoothing rule.  At 16 rows the estimate's
/// relative standard error is ~25%, about the least that reliably
/// out-ranks the product on near-tie plans.
pub const JOINT_MIN_EVIDENCE: f64 = 16.0;

impl SelEstimates {
    /// Independence-assuming estimates from two per-column selectivities
    /// (clamped to `(0, 1]`).
    fn independent(sel_a: f64, sel_b: f64) -> Self {
        let sel_a = clamp_sel(sel_a);
        let sel_b = clamp_sel(sel_b);
        SelEstimates { sel_a, sel_b, sel_ab: clamp_sel(sel_a * sel_b) }
    }

    /// Exact marginal estimates (the conjunction still assumes
    /// independence — exactly what a single-column catalog knows).
    /// Clamped into `(0, 1]` like every other constructor: an empty
    /// result calibrates to selectivity 0, and the cost formulas divide
    /// by these.
    pub fn exact(sel_a: f64, sel_b: f64) -> Self {
        Self::independent(sel_a, sel_b)
    }

    /// Estimates distorted by a multiplicative error factor (values are
    /// clamped to `(0, 1]`); `error > 1` over-estimates, `< 1` under-
    /// estimates.  This is the run-time condition the paper's motivation
    /// names first: "errors in cardinality estimation".
    pub fn with_error(sel_a: f64, sel_b: f64, error_a: f64, error_b: f64) -> Self {
        Self::independent(sel_a * error_a, sel_b * error_b)
    }

    /// Estimates derived from catalog histograms — how a real optimizer
    /// obtains them.  Error is then governed by bucket count and histogram
    /// staleness, not injected directly.  Estimates are clamped to
    /// `(0, 1]` like [`SelEstimates::with_error`]'s (an empty or stale
    /// histogram can report 0, and the cost formulas divide by these).
    pub fn from_histograms(
        hist_a: &robustmap_workload::EquiDepthHistogram,
        hist_b: &robustmap_workload::EquiDepthHistogram,
        ta: i64,
        tb: i64,
    ) -> Self {
        Self::independent(hist_a.estimate_at_most(ta), hist_b.estimate_at_most(tb))
    }

    /// Estimates derived from a two-column [`JointHistogram`]: marginals
    /// from its per-column histograms, the conjunction from observed
    /// co-occurrence.  The joint estimate is kept coherent with the
    /// marginals by clamping into the Fréchet bounds
    /// `[max(0, sel_a + sel_b - 1), min(sel_a, sel_b)]`.
    ///
    /// Sampled statistics cannot resolve selectivities below the sample
    /// grain, and pretending otherwise made the joint estimator *worse*
    /// than independence exactly where independence was right (pinned by
    /// `ext_optimizer`'s uncorrelated-map check).  Two guards therefore
    /// apply, both classic:
    ///
    /// * a **marginal** estimate below one sampled row's probability is
    ///   floored at half a row (`0.5 / sample_rows` — the midpoint of
    ///   what "we sampled nothing" is evidence for), never at the raw
    ///   near-zero the cost formulas would otherwise divide by;
    /// * a **conjunction** where the sample could not have seen the
    ///   co-occurrence either way — both the observed mass *and* the mass
    ///   independence would predict sit below [`JOINT_MIN_EVIDENCE`]
    ///   sampled rows — falls back to the independence product of the
    ///   (floored) marginals (minimum-support smoothing: a near-empty
    ///   joint cell is noise when nothing was expected).  Observing
    ///   ~nothing where independence expects plenty is the opposite of
    ///   noise — decisive evidence of *negative* association — so there
    ///   the observed estimate stands.
    ///
    /// [`JointHistogram`]: robustmap_workload::JointHistogram
    pub fn from_joint(joint: &robustmap_workload::JointHistogram, ta: i64, tb: i64) -> Self {
        let m = joint.sample_rows().max(1) as f64;
        let marginal_floor = 0.5 / m;
        let floor_sel = |raw: f64| clamp_sel(if raw < 1.0 / m { marginal_floor } else { raw });
        let sel_a = floor_sel(joint.marginal_a().estimate_at_most(ta));
        let sel_b = floor_sel(joint.marginal_b().estimate_at_most(tb));
        let raw = joint.estimate_joint_at_most(ta, tb);
        let evidence_floor = JOINT_MIN_EVIDENCE / m;
        let product = sel_a * sel_b;
        let sel_ab =
            if raw < evidence_floor && product < evidence_floor { product } else { raw };
        SelEstimates { sel_a, sel_b, sel_ab: frechet_clamp(sel_a, sel_b, sel_ab) }
    }
}

/// Table/index statistics the estimator consults (what a catalog would
/// keep).
#[derive(Debug, Clone)]
pub struct CatalogStats {
    /// Table rows.
    pub rows: f64,
    /// Heap pages.
    pub heap_pages: f64,
    /// Index entries per leaf page (from the B+-tree's defaults).
    pub entries_per_leaf: f64,
    /// Index height (root-to-leaf page count).
    pub index_height: f64,
    /// Leading key column per index, indexed by `IndexId.0` — published by
    /// the workload's catalog ([`Workload::leading_column`]), never
    /// hard-coded from allocation order.
    leading: Vec<usize>,
}

impl CatalogStats {
    /// Gather statistics from a built workload.
    pub fn of(w: &Workload) -> Self {
        let tree = &w.db.index(w.indexes.a).tree;
        let mut leading = Vec::new();
        for (id, def) in w.db.indexes_on(w.table) {
            let slot = id.0 as usize;
            if leading.len() <= slot {
                leading.resize(slot + 1, usize::MAX);
            }
            leading[slot] = def.key_columns[0];
        }
        CatalogStats {
            rows: w.rows() as f64,
            heap_pages: w.heap_pages() as f64,
            entries_per_leaf: (tree.len() as f64 / tree.node_count() as f64).max(1.0),
            index_height: tree.height() as f64,
            leading,
        }
    }

    /// The leading key column of `index`, or `None` for an index this
    /// catalog does not know about.
    pub fn leading_column(&self, index: robustmap_storage::IndexId) -> Option<usize> {
        match self.leading.get(index.0 as usize) {
            Some(&col) if col != usize::MAX => Some(col),
            _ => None,
        }
    }
}

/// Estimate the cost (in model seconds) of one two-predicate plan under
/// the given selectivity estimates.  Covers the plan shapes the three
/// systems generate; other shapes fall back to a table-scan bound.
pub fn estimate_cost(
    spec: &PlanSpec,
    stats: &CatalogStats,
    est: &SelEstimates,
    model: &CostModel,
) -> f64 {
    let rows = stats.rows;
    let result_rows = est.sel_ab * rows;
    match spec {
        PlanSpec::TableScan { .. } => {
            stats.heap_pages * model.seq_page_read + rows * (model.cpu_row + model.cpu_compare)
        }
        PlanSpec::IndexFetch { scan, key_filter, fetch, .. } => {
            // Which column leads this index?  Estimate from the key range
            // being on `a` (indexes a, ab) or `b` (b, ba) — the plan
            // catalogs encode that in the scan's index; we approximate by
            // treating the leading-range selectivity as sel_a for index a
            // and ab, sel_b otherwise.  Plan factories only produce these
            // shapes, and the estimator receives the same `scan.index` ids
            // the workload publishes.
            let leading = leading_selectivity(scan.index, stats, est);
            let scanned_entries = leading * rows;
            let qualifying =
                if key_filter.is_true() { scanned_entries } else { result_rows.max(1.0) };
            let leaf_cost = (scanned_entries / stats.entries_per_leaf).ceil()
                * model.seq_page_read
                + stats.index_height * model.random_page_read;
            let fetch_cost = estimate_fetch(qualifying, stats, fetch, model);
            leaf_cost
                + fetch_cost
                + scanned_entries * (model.cpu_row + model.cpu_compare)
                + qualifying * model.cpu_row
        }
        PlanSpec::CoveringIndexScan { scan, .. } => {
            let leading = leading_selectivity(scan.index, stats, est);
            let scanned = leading * rows;
            (scanned / stats.entries_per_leaf).ceil() * model.seq_page_read
                + stats.index_height * model.random_page_read
                + scanned * (model.cpu_row + model.cpu_compare)
        }
        PlanSpec::Mdam { .. } => {
            // MDAM scans the qualifying entries plus one probe per skip;
            // a common optimizer formula charges the covering scan of the
            // leading range discounted by skip savings.  Stay simple:
            // qualifying entries + log-height seeks per distinct prefix
            // (approximated as qualifying + sqrt work).
            let qualifying = result_rows.max(1.0);
            let leaf_pages = (qualifying / stats.entries_per_leaf).ceil();
            leaf_pages * model.seq_page_read
                + (qualifying.sqrt() + 1.0) * stats.index_height * model.cpu_buffer_hit * 4.0
                + stats.index_height * model.random_page_read
                + qualifying * (model.cpu_row + model.cpu_compare)
        }
        PlanSpec::IndexIntersect { left, right, fetch, .. } => {
            let sl = leading_selectivity(left.index, stats, est) * rows;
            let sr = leading_selectivity(right.index, stats, est) * rows;
            let leaf = ((sl + sr) / stats.entries_per_leaf).ceil() * model.seq_page_read
                + 2.0 * stats.index_height * model.random_page_read;
            let combine = (sl + sr) * (model.cpu_compare * 20.0); // sort/hash work
            let fetch_cost = estimate_fetch(result_rows, stats, fetch, model);
            leaf + combine + fetch_cost + result_rows * model.cpu_row
        }
        // Shapes outside the two-predicate catalogs: bound by a scan.
        _ => stats.heap_pages * model.seq_page_read + rows * model.cpu_row,
    }
}

/// Leading-column selectivity of an index range scan: the estimate for
/// whichever predicate column the catalog says leads the index (`a` and
/// `(a, b)` lead on `a`; `b` and `(b, a)` lead on `b`), and `1.0` for
/// indexes leading on an unfiltered column (the `c` index).
fn leading_selectivity(
    index: robustmap_storage::IndexId,
    stats: &CatalogStats,
    est: &SelEstimates,
) -> f64 {
    match stats.leading_column(index) {
        Some(robustmap_workload::COL_A) => est.sel_a,
        Some(robustmap_workload::COL_B) => est.sel_b,
        _ => 1.0,
    }
}

/// Cost (in model seconds) of fetching `rows_to_fetch` heap rows under the
/// given fetch discipline — shared by the plan formulas above and by the
/// adaptive layer's mid-flight re-costing ([`crate::adaptive`]), which
/// substitutes an *observed* cardinality for the estimate.
pub fn estimate_fetch(
    rows_to_fetch: f64,
    stats: &CatalogStats,
    fetch: &FetchKind,
    model: &CostModel,
) -> f64 {
    let touched_pages = rows_to_fetch.min(stats.heap_pages);
    match fetch {
        FetchKind::Traditional => rows_to_fetch * model.random_page_read,
        FetchKind::Improved(_) => {
            // Sorted fetch: dense ranges ride read-ahead, sparse ones seek.
            if rows_to_fetch >= stats.heap_pages {
                stats.heap_pages * model.seq_page_read + rows_to_fetch * model.cpu_buffer_hit
            } else {
                touched_pages * model.single_page_read
            }
        }
        FetchKind::BitmapSorted => touched_pages * model.single_page_read,
    }
}

/// The optimizer: estimate every plan and return the index of the cheapest
/// (ties break to the lower index, deterministically).
#[deprecated(
    note = "use `choice::Chooser` with `ChoicePolicy::Point` — this free \
            function is a thin shim over it (bit-identical, pinned by \
            `tests/prop_choice.rs`)"
)]
pub fn choose_plan(
    plans: &[TwoPredPlan],
    ta: i64,
    tb: i64,
    stats: &CatalogStats,
    est: &SelEstimates,
    model: &CostModel,
) -> usize {
    crate::choice::Chooser { plans, stats, model, policy: crate::choice::ChoicePolicy::Point }
        .choose_at(est, ta, tb)
        .plan
}

#[cfg(test)]
#[allow(deprecated)] // the legacy shim's behaviour is pinned here
mod tests {
    use super::*;
    use crate::two_pred::two_predicate_plans;
    use crate::SystemId;
    use robustmap_workload::{TableBuilder, WorkloadConfig};

    fn setup() -> (Workload, CatalogStats, CostModel) {
        // Large enough that index plans can beat a (non-trivial) table
        // scan; on a 23-page table the scan legitimately wins everywhere.
        let w = TableBuilder::build(WorkloadConfig::with_rows(1 << 16));
        let stats = CatalogStats::of(&w);
        (w, stats, CostModel::hdd_2009())
    }

    #[test]
    fn catalog_stats_reflect_the_workload() {
        let (w, stats, _) = setup();
        assert_eq!(stats.rows, w.rows() as f64);
        assert_eq!(stats.heap_pages, w.heap_pages() as f64);
        assert!(stats.entries_per_leaf > 50.0);
        assert!(stats.index_height >= 1.0);
    }

    #[test]
    fn estimates_are_positive_and_finite_for_all_plans() {
        let (w, stats, model) = setup();
        let (ta, tb) = (w.cal_a.threshold(0.1), w.cal_b.threshold(0.1));
        for sys in SystemId::all() {
            for plan in two_predicate_plans(sys, &w) {
                let est = SelEstimates::exact(0.1, 0.1);
                let cost = estimate_cost(&plan.build(ta, tb), &stats, &est, &model);
                assert!(cost.is_finite() && cost > 0.0, "{}: {cost}", plan.name);
            }
        }
    }

    #[test]
    fn chooser_prefers_index_plans_for_tiny_results() {
        let (w, stats, model) = setup();
        let plans = two_predicate_plans(SystemId::A, &w);
        let (ta, tb) = (w.cal_a.threshold(0.001), w.cal_b.threshold(0.001));
        let chosen = choose_plan(&plans, ta, tb, &stats, &SelEstimates::exact(0.001, 0.001), &model);
        assert_ne!(plans[chosen].name, "A1 table scan", "tiny results want an index plan");
    }

    #[test]
    fn chooser_prefers_the_table_scan_for_full_results() {
        let (w, stats, model) = setup();
        let plans = two_predicate_plans(SystemId::A, &w);
        let (ta, tb) = (w.cal_a.threshold(1.0), w.cal_b.threshold(1.0));
        let chosen = choose_plan(&plans, ta, tb, &stats, &SelEstimates::exact(1.0, 1.0), &model);
        assert_eq!(plans[chosen].name, "A1 table scan");
    }

    #[test]
    fn estimation_error_changes_the_choice() {
        let (w, stats, model) = setup();
        let plans = two_predicate_plans(SystemId::A, &w);
        // True selectivity is high (table scan territory), but the
        // optimizer believes it is tiny: it picks an index plan.
        let (ta, tb) = (w.cal_a.threshold(0.5), w.cal_b.threshold(0.5));
        let honest = choose_plan(&plans, ta, tb, &stats, &SelEstimates::exact(0.5, 0.5), &model);
        let fooled = choose_plan(
            &plans,
            ta,
            tb,
            &stats,
            &SelEstimates::with_error(0.5, 0.5, 1.0 / 512.0, 1.0 / 512.0),
            &model,
        );
        assert_ne!(plans[honest].name, plans[fooled].name);
    }

    #[test]
    fn error_clamping_keeps_estimates_in_range() {
        let est = SelEstimates::with_error(0.5, 0.5, 1e9, 1e-30);
        assert!(est.sel_a <= 1.0);
        assert!(est.sel_b > 0.0);
        assert!(est.sel_ab > 0.0 && est.sel_ab <= 1.0);
    }

    #[test]
    fn exact_clamps_both_edges_like_every_other_constructor() {
        // Lower edge: a zero selectivity (empty calibrated result) must
        // clamp to MIN_POSITIVE — the cost formulas divide by these.
        let lo = SelEstimates::exact(0.0, 0.5);
        assert!(lo.sel_a > 0.0, "zero marginal clamps: {}", lo.sel_a);
        assert!(lo.sel_ab > 0.0, "zero conjunction clamps: {}", lo.sel_ab);
        assert_eq!(lo.sel_b, 0.5);
        // Upper edge: over-unity estimates clamp to 1.
        let hi = SelEstimates::exact(1.5, 2.0);
        assert_eq!(hi.sel_a, 1.0);
        assert_eq!(hi.sel_b, 1.0);
        assert_eq!(hi.sel_ab, 1.0);
    }

    #[test]
    fn leading_selectivity_follows_catalog_metadata_for_all_five_indexes() {
        let (w, stats, _) = setup();
        let est = SelEstimates::exact(0.25, 0.5);
        // The catalog, not the allocation order, decides which marginal an
        // index leads on: a and (a, b) read sel_a, b and (b, a) read
        // sel_b, the c index (unfiltered in these plans) reads 1.
        for (index, want) in [
            (w.indexes.a, est.sel_a),
            (w.indexes.ab, est.sel_a),
            (w.indexes.b, est.sel_b),
            (w.indexes.ba, est.sel_b),
            (w.indexes.c, 1.0),
        ] {
            assert_eq!(leading_selectivity(index, &stats, &est), want, "index {index:?}");
            assert_eq!(
                stats.leading_column(index),
                Some(w.leading_column(index)),
                "stats must republish the workload's catalog metadata"
            );
        }
        // An index the catalog never saw costs like an unfiltered scan
        // instead of silently borrowing another index's selectivity.
        assert_eq!(stats.leading_column(robustmap_storage::IndexId(99)), None);
        assert_eq!(
            leading_selectivity(robustmap_storage::IndexId(99), &stats, &est),
            1.0
        );
    }

    #[test]
    fn from_histograms_clamps_out_of_range_estimates_into_unit_interval() {
        use robustmap_workload::EquiDepthHistogram;
        // An empty histogram estimates 0.0 — outside the (0, 1] range the
        // cost formulas divide by — and must clamp to MIN_POSITIVE on
        // both sides, exactly like `with_error` does.
        let empty = EquiDepthHistogram::build(vec![], 4);
        let full = EquiDepthHistogram::build((0..100).collect(), 4);
        let est = SelEstimates::from_histograms(&empty, &full, 50, 1_000);
        assert!(est.sel_a > 0.0 && est.sel_a <= 1.0, "lower clamp: {}", est.sel_a);
        assert_eq!(est.sel_b, 1.0, "upper clamp keeps a full-range estimate at 1");
        assert!(est.sel_ab > 0.0 && est.sel_ab <= 1.0);
        // Both columns out of range at once.
        let est = SelEstimates::from_histograms(&empty, &empty, 50, 50);
        assert!(est.sel_a > 0.0 && est.sel_b > 0.0 && est.sel_ab > 0.0);
    }

    #[test]
    fn joint_estimates_capture_correlation_that_independence_misses() {
        use robustmap_workload::gen::PredicateDistribution;
        use robustmap_workload::{JointHistogram, JointHistogramConfig, TableBuilder, WorkloadConfig};
        let w = TableBuilder::build(WorkloadConfig {
            rows: 1 << 14,
            seed: 23,
            predicate_dist: PredicateDistribution::CorrelatedHundredths(100),
            mutation_epoch: 0,
        });
        let joint = JointHistogram::from_workload(&w, &JointHistogramConfig::default());
        let (ta, tb) = (w.cal_a.threshold(0.25), w.cal_b.threshold(0.25));
        let est = SelEstimates::from_joint(&joint, ta, tb);
        // Marginals track the per-column truth; the conjunction tracks the
        // diagonal (b == a), not the independence product 0.0625.
        assert!((est.sel_a - 0.25).abs() < 0.03, "sel_a {}", est.sel_a);
        assert!((est.sel_b - 0.25).abs() < 0.05, "sel_b {}", est.sel_b);
        assert!(est.sel_ab > 0.18, "joint {} should be near 0.25, not 0.0625", est.sel_ab);
        // Coherence: within the Fréchet bounds.
        assert!(est.sel_ab <= est.sel_a.min(est.sel_b) + 1e-12);
    }

    #[test]
    fn from_joint_falls_back_to_independence_below_the_sample_floor() {
        use robustmap_workload::{JointHistogram, JointHistogramConfig, TableBuilder};
        // Independent permutation columns: the true conjunction at tiny
        // thresholds is far below what any finite sample can observe.  A
        // raw joint estimate there is an empty-cell artifact; the
        // estimator must report the independence product of the
        // well-resolved marginals instead of a near-zero conjunction.
        let w = TableBuilder::build(WorkloadConfig::with_rows(1 << 16));
        let joint = JointHistogram::from_workload(
            &w,
            &JointHistogramConfig { sample_target: 1 << 10, ..Default::default() },
        );
        let sel = 1.0 / 512.0; // conjunction ~ 2^-18, floor ~ 2^-10
        let (ta, tb) = (w.cal_a.threshold(sel), w.cal_b.threshold(sel));
        let est = SelEstimates::from_joint(&joint, ta, tb);
        let product = est.sel_a * est.sel_b;
        assert!(
            (est.sel_ab - product).abs() <= product * 0.5 + 1e-12,
            "below the floor the conjunction must track the product: {} vs {product}",
            est.sel_ab
        );
        assert!(est.sel_ab < 1e-4, "and the product of tiny marginals is tiny");
    }

    #[test]
    fn from_joint_keeps_observed_negative_association() {
        use robustmap_workload::{JointHistogram, JointHistogramConfig};
        // b is the mirror of a: predicates selecting the lower half of
        // each column have a truly empty conjunction.  The sample observes
        // ~zero co-occurrence where independence predicts a quarter of the
        // table — decisive evidence, which the minimum-support fallback
        // must NOT override with the product.
        let n = 1i64 << 12;
        let pairs: Vec<(i64, i64)> = (0..n).map(|i| (i, n - 1 - i)).collect();
        let joint =
            JointHistogram::build(pairs, n as u64, JointHistogramConfig::default());
        let t = n / 2 - 1;
        let est = SelEstimates::from_joint(&joint, t, t);
        assert!((est.sel_a - 0.5).abs() < 0.02);
        assert!((est.sel_b - 0.5).abs() < 0.02);
        assert!(
            est.sel_ab < 0.05,
            "negative association must survive the support guard: {} (product would be 0.25)",
            est.sel_ab
        );
    }

    #[test]
    fn histogram_estimates_track_true_selectivities() {
        use robustmap_storage::Session;
        use robustmap_workload::{EquiDepthHistogram, COL_A, COL_B};
        let (w, _, _) = setup();
        // Gather column values the way a statistics job would.
        let s = Session::with_pool_pages(0);
        let mut vals_a = Vec::new();
        let mut vals_b = Vec::new();
        w.db.table(w.table).heap.scan(&s, |_, row| {
            vals_a.push(row.get(COL_A));
            vals_b.push(row.get(COL_B));
        });
        let hist_a = EquiDepthHistogram::build(vals_a, 64);
        let hist_b = EquiDepthHistogram::build(vals_b, 64);
        for sel in [0.01, 0.25, 0.9] {
            let (ta, tb) = (w.cal_a.threshold(sel), w.cal_b.threshold(sel));
            let est = SelEstimates::from_histograms(&hist_a, &hist_b, ta, tb);
            assert!((est.sel_a - sel).abs() < 0.05, "sel {sel}: est {:.4}", est.sel_a);
            assert!((est.sel_b - sel).abs() < 0.05, "sel {sel}: est {:.4}", est.sel_b);
        }
    }

    #[test]
    fn coarse_histograms_err_on_skewed_columns() {
        // On uniform (permutation) columns even a 2-bucket equi-depth
        // histogram interpolates perfectly — the estimation errors the
        // paper worries about come from skew (and staleness).
        use robustmap_workload::{Calibrator, Distribution, EquiDepthHistogram, Zipf};
        let mut z = Zipf::new(4096, 1.3, 11);
        let values: Vec<i64> = (0..50_000).map(|i| z.value(i)).collect();
        let cal = Calibrator::new(values.clone());
        let coarse = EquiDepthHistogram::build(values.clone(), 2);
        let fine = EquiDepthHistogram::build(values, 512);
        // Probe between the head value and the tail, where skew bites.
        let mut worst_coarse = 0.0f64;
        let mut worst_fine = 0.0f64;
        for t in [1i64, 3, 10, 50, 300, 2000] {
            let truth = cal.selectivity(t);
            worst_coarse = worst_coarse.max((coarse.estimate_at_most(t) - truth).abs());
            worst_fine = worst_fine.max((fine.estimate_at_most(t) - truth).abs());
        }
        assert!(
            worst_coarse > 4.0 * worst_fine,
            "coarse {worst_coarse:.4} should err far more than fine {worst_fine:.4}"
        );
    }
}
