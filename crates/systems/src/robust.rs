//! Penalty-aware robust plan selection under estimation uncertainty.
//!
//! [`crate::optimizer::choose_plan`] is the textbook chooser: argmin of
//! estimated cost at the *point* estimate.  The `ext_correlated`
//! experiment showed how that fails — feed it a cardinality that is wrong
//! by `rho / s` and it freezes on the wrong join across the whole
//! correlation sweep.  Modern robust-plan work (PARQO's penalty-aware
//! selection, Xiu et al. 2024; probabilistic plan evaluation, Kamali et
//! al. 2024) replaces the point with an *uncertainty region*: evaluate
//! every candidate over a set of selectivity hypotheses weighted by how
//! plausible the statistics make them, and pick the plan minimizing
//!
//! ```text
//! expected cost + penalty_weight * cost at the tail quantile
//! ```
//!
//! The tail term is the penalty-awareness: a plan that is cheap at the
//! estimate but catastrophic one histogram bucket away carries its
//! catastrophe into the score, while a flat (robust) plan is scored at
//! roughly its point cost.  With a single hypothesis and
//! `penalty_weight = 0` the robust chooser degenerates to `choose_plan`
//! exactly (unit-tested below).
//!
//! The hypothesis set comes from [`uncertainty_region`]: a 3 × 3 credible
//! box around the [`JointHistogram`]'s estimate, one marginal-bucket
//! resolution wide per axis — the statistics cannot distinguish
//! selectivities closer than a bucket, so that is exactly the region the
//! chooser should hedge over.  Each hypothesis keeps the histogram's
//! observed correlation lift (`sel_ab / (sel_a * sel_b)`) and stays inside
//! the Fréchet bounds, so the region never hypothesises an incoherent
//! joint selectivity.

use robustmap_storage::CostModel;
use robustmap_workload::JointHistogram;

use crate::optimizer::{clamp_sel, estimate_cost, frechet_clamp, CatalogStats, SelEstimates};
use crate::two_pred::TwoPredPlan;

/// Tuning knobs of the robust chooser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustConfig {
    /// Quantile of the hypothesis cost distribution charged as the tail
    /// term (`0.9` = the cost the plan runs into in the worst decile of
    /// the credible region).
    pub tail_quantile: f64,
    /// Weight of the tail term added to the expected cost; `0` recovers
    /// pure expected-cost selection.
    pub penalty_weight: f64,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig { tail_quantile: 0.9, penalty_weight: 0.5 }
    }
}

/// One selectivity hypothesis with its plausibility weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelHypothesis {
    /// The hypothesised selectivities.
    pub est: SelEstimates,
    /// Plausibility weight (a region's weights sum to 1).
    pub weight: f64,
}

/// The credible box of selectivity hypotheses around the joint
/// histogram's estimate at `(ta, tb)` with the *fixed* bucket-resolution
/// half-widths: `credible_region` at ± one marginal bucket per axis.
/// The variance-adaptive widths live in [`crate::choice::Joint`].
pub fn uncertainty_region(joint: &JointHistogram, ta: i64, tb: i64) -> Vec<SelHypothesis> {
    credible_region(joint, ta, tb, joint.resolution_a(), joint.resolution_b())
}

/// The credible box with explicit half-widths: a 3 × 3 grid spanning
/// ± `radius_a` / ± `radius_b` around the joint estimate, triangular
/// weights (¼, ½, ¼ per axis), center = [`SelEstimates::from_joint`].
/// Every hypothesis keeps the histogram's observed correlation lift and
/// stays inside the Fréchet bounds.
pub fn credible_region(
    joint: &JointHistogram,
    ta: i64,
    tb: i64,
    radius_a: f64,
    radius_b: f64,
) -> Vec<SelHypothesis> {
    credible_region_around(SelEstimates::from_joint(joint, ta, tb), radius_a, radius_b)
}

/// The same credible box around an explicit center estimate — the shared
/// construction behind [`credible_region`] and the staleness-aware
/// estimators in [`crate::choice`], whose centers do not come from a
/// [`JointHistogram`] lookup (stale bases, delta-maintained statistics).
pub fn credible_region_around(
    center: SelEstimates,
    radius_a: f64,
    radius_b: f64,
) -> Vec<SelHypothesis> {
    // The statistics' observed dependence, carried across the box: the
    // lift is what the histogram knows beyond the marginals.
    let lift = center.sel_ab / (center.sel_a * center.sel_b);
    let axis = |s0: f64, r: f64| {
        [(clamp_sel(s0 - r), 0.25), (s0, 0.5), (clamp_sel(s0 + r), 0.25)]
    };
    let mut region = Vec::with_capacity(9);
    for (sa, wa) in axis(center.sel_a, radius_a) {
        for (sb, wb) in axis(center.sel_b, radius_b) {
            let est = if sa == center.sel_a && sb == center.sel_b {
                center // the exact histogram estimate, not a lift round-trip
            } else {
                SelEstimates { sel_a: sa, sel_b: sb, sel_ab: frechet_clamp(sa, sb, lift * sa * sb) }
            };
            region.push(SelHypothesis { est, weight: wa * wb });
        }
    }
    region
}

/// Expected and tail-quantile estimated cost of one plan over a weighted
/// hypothesis region.
pub fn region_cost(
    plan: &TwoPredPlan,
    ta: i64,
    tb: i64,
    stats: &CatalogStats,
    region: &[SelHypothesis],
    model: &CostModel,
    cfg: &RobustConfig,
) -> (f64, f64) {
    assert!(!region.is_empty(), "empty uncertainty region");
    let spec = plan.build(ta, tb);
    let mut costs: Vec<(f64, f64)> = region
        .iter()
        .map(|h| (estimate_cost(&spec, stats, &h.est, model), h.weight))
        .collect();
    let total_w: f64 = costs.iter().map(|&(_, w)| w).sum();
    let expected = costs.iter().map(|&(c, w)| c * w).sum::<f64>() / total_w;
    costs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite estimated costs"));
    let mut acc = 0.0;
    let mut tail = costs.last().expect("nonempty").0;
    for &(c, w) in &costs {
        acc += w / total_w;
        if acc >= cfg.tail_quantile {
            tail = c;
            break;
        }
    }
    (expected, tail)
}

/// The robust chooser: return the index of the plan minimizing
/// `expected + penalty_weight * tail` over the hypothesis region (ties
/// break to the lower index, deterministically).
#[deprecated(
    note = "use `choice::Chooser` with `ChoicePolicy::Robust` — this free \
            function is a thin shim over it"
)]
pub fn choose_plan_robust(
    plans: &[TwoPredPlan],
    ta: i64,
    tb: i64,
    stats: &CatalogStats,
    region: &[SelHypothesis],
    model: &CostModel,
    cfg: &RobustConfig,
) -> usize {
    crate::choice::Chooser {
        plans,
        stats,
        model,
        policy: crate::choice::ChoicePolicy::Robust(*cfg),
    }
    .choose_over(region, ta, tb)
    .plan
}

/// Convenience: build the [`uncertainty_region`] from `joint` at
/// `(ta, tb)` and choose robustly over it.
#[deprecated(
    note = "use `choice::Chooser` with a `choice::Joint` estimator and \
            `ChoicePolicy::Robust` — this free function is a thin shim \
            over them (with the fixed bucket-resolution region)"
)]
pub fn choose_plan_with_joint(
    plans: &[TwoPredPlan],
    ta: i64,
    tb: i64,
    stats: &CatalogStats,
    joint: &JointHistogram,
    model: &CostModel,
    cfg: &RobustConfig,
) -> usize {
    let region = uncertainty_region(joint, ta, tb);
    crate::choice::Chooser {
        plans,
        stats,
        model,
        policy: crate::choice::ChoicePolicy::Robust(*cfg),
    }
    .choose_over(&region, ta, tb)
    .plan
}

#[cfg(test)]
#[allow(deprecated)] // the shims' degeneration contracts are pinned here
mod tests {
    use super::*;
    use crate::optimizer::choose_plan;
    use crate::two_pred::two_predicate_plans;
    use crate::SystemId;
    use robustmap_workload::gen::PredicateDistribution;
    use robustmap_workload::{JointHistogramConfig, TableBuilder, WorkloadConfig};

    fn setup() -> (robustmap_workload::Workload, CatalogStats, CostModel) {
        let w = TableBuilder::build(WorkloadConfig::with_rows(1 << 16));
        let stats = CatalogStats::of(&w);
        (w, stats, CostModel::hdd_2009())
    }

    #[test]
    fn single_hypothesis_no_penalty_degenerates_to_the_point_chooser() {
        let (w, stats, model) = setup();
        let plans = two_predicate_plans(SystemId::A, &w);
        let cfg = RobustConfig { tail_quantile: 1.0, penalty_weight: 0.0 };
        for sel in [0.001, 0.05, 0.5, 1.0] {
            let (ta, tb) = (w.cal_a.threshold(sel), w.cal_b.threshold(sel));
            let est = SelEstimates::exact(sel, sel);
            let region = [SelHypothesis { est, weight: 1.0 }];
            let point = choose_plan(&plans, ta, tb, &stats, &est, &model);
            let robust = choose_plan_robust(&plans, ta, tb, &stats, &region, &model, &cfg);
            assert_eq!(point, robust, "sel {sel}");
        }
    }

    #[test]
    fn tail_penalty_hedges_against_the_catastrophic_hypothesis() {
        // The point estimate says "tiny result" (index-fetch territory),
        // but a minority hypothesis says "everything qualifies" — where a
        // per-row fetch plan is catastrophic and the table scan is flat.
        // Expected cost alone keeps the index plan; the tail penalty must
        // flip the choice to a plan that survives the bad hypothesis.
        let (w, stats, model) = setup();
        let plans = two_predicate_plans(SystemId::A, &w);
        let (ta, tb) = (w.cal_a.threshold(0.3), w.cal_b.threshold(0.3));
        let region = [
            SelHypothesis { est: SelEstimates::exact(0.001, 0.001), weight: 0.93 },
            SelHypothesis { est: SelEstimates::exact(1.0, 1.0), weight: 0.07 },
        ];
        let expected_only = RobustConfig { tail_quantile: 0.95, penalty_weight: 0.0 };
        let penalised = RobustConfig { tail_quantile: 0.95, penalty_weight: 10.0 };
        let lean = choose_plan_robust(&plans, ta, tb, &stats, &region, &model, &expected_only);
        let hedged = choose_plan_robust(&plans, ta, tb, &stats, &region, &model, &penalised);
        // The hedged choice must never have a worse tail than the lean one
        // (that is the penalty's whole point), and on this region it is a
        // strictly different, tail-safer plan.
        let (_, lean_tail) = region_cost(&plans[lean], ta, tb, &stats, &region, &model, &penalised);
        let (_, hedged_tail) =
            region_cost(&plans[hedged], ta, tb, &stats, &region, &model, &penalised);
        assert!(hedged_tail <= lean_tail, "{lean_tail} vs {hedged_tail}");
        assert_ne!(
            plans[lean].name, plans[hedged].name,
            "the penalty should flip this constructed choice"
        );
    }

    #[test]
    fn uncertainty_region_is_a_coherent_probability_box() {
        let w = TableBuilder::build(WorkloadConfig {
            rows: 1 << 14,
            seed: 31,
            predicate_dist: PredicateDistribution::CorrelatedHundredths(75),
            mutation_epoch: 0,
        });
        let joint = robustmap_workload::JointHistogram::from_workload(
            &w,
            &JointHistogramConfig::default(),
        );
        for sel in [0.01, 0.25, 0.9] {
            let (ta, tb) = (w.cal_a.threshold(sel), w.cal_b.threshold(sel));
            let region = uncertainty_region(&joint, ta, tb);
            assert_eq!(region.len(), 9);
            let wsum: f64 = region.iter().map(|h| h.weight).sum();
            assert!((wsum - 1.0).abs() < 1e-12, "weights sum to {wsum}");
            let center = SelEstimates::from_joint(&joint, ta, tb);
            assert!(region.iter().any(|h| h.est == center), "center hypothesis present");
            for h in &region {
                assert!(h.est.sel_a > 0.0 && h.est.sel_a <= 1.0);
                assert!(h.est.sel_b > 0.0 && h.est.sel_b <= 1.0);
                assert!(h.est.sel_ab <= h.est.sel_a.min(h.est.sel_b) + 1e-12);
                assert!(h.est.sel_ab >= (h.est.sel_a + h.est.sel_b - 1.0) - 1e-12);
                assert!(h.weight > 0.0);
            }
        }
    }

    #[test]
    fn region_cost_is_finite_and_tail_dominates_expectation_quantile() {
        let (w, stats, model) = setup();
        let plans = two_predicate_plans(SystemId::A, &w);
        let joint = robustmap_workload::JointHistogram::from_workload(
            &w,
            &JointHistogramConfig::default(),
        );
        let (ta, tb) = (w.cal_a.threshold(0.1), w.cal_b.threshold(0.1));
        let region = uncertainty_region(&joint, ta, tb);
        let cfg = RobustConfig::default();
        for plan in &plans {
            let (expected, tail) = region_cost(plan, ta, tb, &stats, &region, &model, &cfg);
            assert!(expected.is_finite() && expected > 0.0, "{}", plan.name);
            assert!(tail.is_finite() && tail > 0.0, "{}", plan.name);
            // The 0.9-quantile can sit below the mean only when the mean is
            // dragged by a >0.1-mass upper tail; with triangular weights the
            // tail is at least the median cost.
            let mut costs: Vec<f64> = region
                .iter()
                .map(|h| estimate_cost(&plan.build(ta, tb), &stats, &h.est, &model))
                .collect();
            costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert!(tail >= costs[costs.len() / 2], "{}", plan.name);
        }
    }
}
