//! Plan catalogs for the single-predicate selection
//! (`SELECT a, c FROM lineitem WHERE a <= ta`), the query behind Figures 1
//! and 2.
//!
//! The query projects columns `a` and `c`, so the single-column index on
//! `a` does *not* cover it — that is what makes the fetch disciplines of
//! Figure 1 interesting, and what Figure 2's "multi-index plans that join
//! non-clustered indexes such that the join result covers the query" work
//! around.

use robustmap_executor::{
    ColRange, FetchKind, ImprovedFetchConfig, IndexRangeSpec, IntersectAlgo, KeyRange, PlanSpec,
    Predicate, Projection,
};
use robustmap_workload::{Workload, COL_A, COL_C};

use crate::system::SystemId;

/// A named plan for the single-predicate query, parameterised by the
/// predicate constant.
pub struct SinglePredPlan {
    /// Owning system (all Figure 1/2 plans run on System A).
    pub system: SystemId,
    /// Stable plan name (map series label).
    pub name: String,
    factory: Box<dyn Fn(i64) -> PlanSpec + Send + Sync>,
}

impl SinglePredPlan {
    fn new(name: &str, factory: impl Fn(i64) -> PlanSpec + Send + Sync + 'static) -> Self {
        SinglePredPlan { system: SystemId::A, name: name.to_string(), factory: Box::new(factory) }
    }

    /// Build the plan for `a <= ta`.
    pub fn build(&self, ta: i64) -> PlanSpec {
        (self.factory)(ta)
    }
}

impl std::fmt::Debug for SinglePredPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.name, self.system)
    }
}

/// Which plan family Figure 1 or Figure 2 sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinglePredPlanSet {
    /// Figure 1's three plans: table scan, traditional index scan, improved
    /// index scan.
    Basic,
    /// Figure 2's extension: the basic plans plus covering rid-join plans
    /// ("alternative join algorithms and ... alternative join orders").
    WithIndexJoins,
}

/// The plan catalog for the single-predicate selection.
pub fn single_predicate_plans(set: SinglePredPlanSet, w: &Workload) -> Vec<SinglePredPlan> {
    let idx = w.indexes;
    let table = w.table;
    let project_ac = Projection::Columns(vec![COL_A, COL_C]);
    let mut plans = vec![
        SinglePredPlan::new("table scan", {
            let project = project_ac.clone();
            move |ta| PlanSpec::TableScan {
                table,
                pred: Predicate::single(ColRange::at_most(COL_A, ta)),
                project: project.clone(),
            }
        }),
        SinglePredPlan::new("traditional index scan", {
            let project = project_ac.clone();
            move |ta| PlanSpec::IndexFetch {
                scan: IndexRangeSpec { index: idx.a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
                key_filter: Predicate::always_true(),
                fetch: FetchKind::Traditional,
                residual: Predicate::always_true(),
                project: project.clone(),
            }
        }),
        SinglePredPlan::new("improved index scan", {
            let project = project_ac.clone();
            move |ta| PlanSpec::IndexFetch {
                scan: IndexRangeSpec { index: idx.a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
                key_filter: Predicate::always_true(),
                fetch: FetchKind::Improved(ImprovedFetchConfig::default()),
                residual: Predicate::always_true(),
                project: project.clone(),
            }
        }),
    ];
    if set == SinglePredPlanSet::WithIndexJoins {
        // Joined covering rows are `a ++ c` (left keys then right keys), so
        // the projection is the identity in that combined space.
        let join = |algo: IntersectAlgo| {
            move |ta: i64| PlanSpec::CoveringRidJoin {
                left: IndexRangeSpec { index: idx.a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
                right: IndexRangeSpec { index: idx.c, range: KeyRange::full(1) },
                algo,
                project: Projection::All,
            }
        };
        plans.push(SinglePredPlan::new("rid join (merge)", join(IntersectAlgo::MergeJoin)));
        plans.push(SinglePredPlan::new(
            "rid join (hash, build a)",
            join(IntersectAlgo::HashJoin { build_left: true }),
        ));
        plans.push(SinglePredPlan::new(
            "rid join (hash, build c)",
            join(IntersectAlgo::HashJoin { build_left: false }),
        ));
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustmap_executor::{execute_collect, ExecCtx};
    use robustmap_storage::Session;
    use robustmap_workload::{TableBuilder, WorkloadConfig};

    #[test]
    fn basic_set_has_figure_ones_three_plans() {
        let w = TableBuilder::build(WorkloadConfig::small());
        assert_eq!(single_predicate_plans(SinglePredPlanSet::Basic, &w).len(), 3);
        assert_eq!(single_predicate_plans(SinglePredPlanSet::WithIndexJoins, &w).len(), 6);
    }

    #[test]
    fn all_six_plans_return_identical_rows() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let (ta, count) = w.cal_a.threshold_with_count(1.0 / 32.0);
        let mut reference: Option<Vec<Vec<i64>>> = None;
        for plan in single_predicate_plans(SinglePredPlanSet::WithIndexJoins, &w) {
            let spec = plan.build(ta);
            let s = Session::with_pool_pages(256);
            let ctx = ExecCtx::new(&w.db, &s, 1 << 22);
            let (stats, rows) = execute_collect(&spec, &ctx).unwrap();
            assert_eq!(stats.rows_out, count, "{}", plan.name);
            let mut rows: Vec<Vec<i64>> = rows.iter().map(|r| r.values().to_vec()).collect();
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(want) => assert_eq!(&rows, want, "{}", plan.name),
            }
        }
    }

    #[test]
    fn empty_selectivity_returns_nothing_fast() {
        let w = TableBuilder::build(WorkloadConfig::small());
        for plan in single_predicate_plans(SinglePredPlanSet::WithIndexJoins, &w) {
            let spec = plan.build(i64::MIN);
            let s = Session::with_pool_pages(256);
            let ctx = ExecCtx::new(&w.db, &s, 1 << 22);
            let (stats, rows) = execute_collect(&spec, &ctx).unwrap();
            assert_eq!(stats.rows_out, 0, "{}", plan.name);
            assert!(rows.is_empty());
        }
    }
}
