//! System identities and capability descriptions.

/// Which of the paper's three systems a plan belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemId {
    /// The paper's first system (Figures 1-7): single-column non-clustered
    /// indexes, improved index scan, merge/hash index intersection.
    A,
    /// System B (Figure 8): two-column indexes that cannot cover (MVCC on
    /// main-table rows only), bitmap-sorted fetch.
    B,
    /// System C (Figure 9): covering two-column indexes with MDAM.
    C,
}

impl SystemId {
    /// All three systems.
    pub fn all() -> [SystemId; 3] {
        [SystemId::A, SystemId::B, SystemId::C]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            SystemId::A => "System A",
            SystemId::B => "System B",
            SystemId::C => "System C",
        }
    }
}

impl std::fmt::Display for SystemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Capability summary of a system, for reports and documentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemInfo {
    /// The system.
    pub id: SystemId,
    /// Which index shapes it can use.
    pub index_shapes: &'static str,
    /// Whether index-only (covering) plans are possible.
    pub covering_plans: bool,
    /// Its signature fetch/scan technique.
    pub signature_technique: &'static str,
}

impl SystemInfo {
    /// Capability description for `id`.
    pub fn of(id: SystemId) -> SystemInfo {
        match id {
            SystemId::A => SystemInfo {
                id,
                index_shapes: "single-column non-clustered",
                covering_plans: false,
                signature_technique: "improved index scan (rid sort + read-ahead switch)",
            },
            SystemId::B => SystemInfo {
                id,
                index_shapes: "single- and two-column non-clustered (non-covering)",
                covering_plans: false,
                signature_technique: "bitmap-sorted fetch (MVCC forces full-row fetches)",
            },
            SystemId::C => SystemInfo {
                id,
                index_shapes: "single- and two-column, covering",
                covering_plans: true,
                signature_technique: "MDAM multi-dimensional B-tree access",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_distinct_systems() {
        let all = SystemId::all();
        assert_eq!(all.len(), 3);
        let names: std::collections::HashSet<&str> = all.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn only_c_covers() {
        assert!(!SystemInfo::of(SystemId::A).covering_plans);
        assert!(!SystemInfo::of(SystemId::B).covering_plans);
        assert!(SystemInfo::of(SystemId::C).covering_plans);
    }
}
