//! Plan catalogs for the two-predicate selection
//! (`SELECT ... FROM lineitem WHERE a <= ta AND b <= tb`),
//! the query behind Figures 4-10.
//!
//! Factories take the two predicate constants so the map builder can sweep
//! `(sel_a, sel_b)` grids; thresholds come from the workload's calibrators.

use robustmap_executor::{
    ColRange, FetchKind, ImprovedFetchConfig, IndexRangeSpec, IntersectAlgo, KeyRange, PlanSpec,
    Predicate, Projection,
};
use robustmap_workload::{Workload, COL_A, COL_B};

use crate::system::SystemId;

/// A named, system-attributed plan for the two-predicate query.
pub struct TwoPredPlan {
    /// Owning system.
    pub system: SystemId,
    /// Stable, human-readable plan name (used as map series labels).
    pub name: String,
    factory: Box<dyn Fn(i64, i64) -> PlanSpec + Send + Sync>,
}

impl TwoPredPlan {
    fn new(
        system: SystemId,
        name: &str,
        factory: impl Fn(i64, i64) -> PlanSpec + Send + Sync + 'static,
    ) -> Self {
        TwoPredPlan { system, name: name.to_string(), factory: Box::new(factory) }
    }

    /// Build the plan for predicate constants `a <= ta AND b <= tb`.
    pub fn build(&self, ta: i64, tb: i64) -> PlanSpec {
        (self.factory)(ta, tb)
    }
}

impl std::fmt::Debug for TwoPredPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.name, self.system)
    }
}

fn pred_both(ta: i64, tb: i64) -> Predicate {
    Predicate::all_of(vec![ColRange::at_most(COL_A, ta), ColRange::at_most(COL_B, tb)])
}

/// The plan repertoire of `system` for the two-predicate selection.
///
/// System A has exactly the paper's seven plans; B and C contribute four
/// plans each (their two-column-index techniques, in both column orders).
pub fn two_predicate_plans(system: SystemId, w: &Workload) -> Vec<TwoPredPlan> {
    let idx = w.indexes;
    let table = w.table;
    let improved = FetchKind::Improved(ImprovedFetchConfig::default());
    match system {
        SystemId::A => vec![
            TwoPredPlan::new(SystemId::A, "A1 table scan", move |ta, tb| PlanSpec::TableScan {
                table,
                pred: pred_both(ta, tb),
                project: Projection::All,
            }),
            TwoPredPlan::new(SystemId::A, "A2 idx(a) fetch", move |ta, tb| PlanSpec::IndexFetch {
                scan: IndexRangeSpec { index: idx.a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
                key_filter: Predicate::always_true(),
                fetch: improved,
                residual: Predicate::single(ColRange::at_most(COL_B, tb)),
                project: Projection::All,
            }),
            TwoPredPlan::new(SystemId::A, "A3 idx(b) fetch", move |ta, tb| PlanSpec::IndexFetch {
                scan: IndexRangeSpec { index: idx.b, range: KeyRange::on_leading(i64::MIN, tb, 1) },
                key_filter: Predicate::always_true(),
                fetch: improved,
                residual: Predicate::single(ColRange::at_most(COL_A, ta)),
                project: Projection::All,
            }),
            TwoPredPlan::new(SystemId::A, "A4 merge(a,b) intersect", move |ta, tb| {
                PlanSpec::IndexIntersect {
                    left: IndexRangeSpec {
                        index: idx.a,
                        range: KeyRange::on_leading(i64::MIN, ta, 1),
                    },
                    right: IndexRangeSpec {
                        index: idx.b,
                        range: KeyRange::on_leading(i64::MIN, tb, 1),
                    },
                    algo: IntersectAlgo::MergeJoin,
                    fetch: improved,
                    residual: Predicate::always_true(),
                    project: Projection::All,
                }
            }),
            TwoPredPlan::new(SystemId::A, "A5 merge(b,a) intersect", move |ta, tb| {
                PlanSpec::IndexIntersect {
                    left: IndexRangeSpec {
                        index: idx.b,
                        range: KeyRange::on_leading(i64::MIN, tb, 1),
                    },
                    right: IndexRangeSpec {
                        index: idx.a,
                        range: KeyRange::on_leading(i64::MIN, ta, 1),
                    },
                    algo: IntersectAlgo::MergeJoin,
                    fetch: improved,
                    residual: Predicate::always_true(),
                    project: Projection::All,
                }
            }),
            TwoPredPlan::new(SystemId::A, "A6 hash(a,b) intersect", move |ta, tb| {
                PlanSpec::IndexIntersect {
                    left: IndexRangeSpec {
                        index: idx.a,
                        range: KeyRange::on_leading(i64::MIN, ta, 1),
                    },
                    right: IndexRangeSpec {
                        index: idx.b,
                        range: KeyRange::on_leading(i64::MIN, tb, 1),
                    },
                    algo: IntersectAlgo::HashJoin { build_left: true },
                    fetch: improved,
                    residual: Predicate::always_true(),
                    project: Projection::All,
                }
            }),
            TwoPredPlan::new(SystemId::A, "A7 hash(b,a) intersect", move |ta, tb| {
                PlanSpec::IndexIntersect {
                    left: IndexRangeSpec {
                        index: idx.b,
                        range: KeyRange::on_leading(i64::MIN, tb, 1),
                    },
                    right: IndexRangeSpec {
                        index: idx.a,
                        range: KeyRange::on_leading(i64::MIN, ta, 1),
                    },
                    algo: IntersectAlgo::HashJoin { build_left: true },
                    fetch: improved,
                    residual: Predicate::always_true(),
                    project: Projection::All,
                }
            }),
        ],
        SystemId::B => vec![
            // Figure 8's plan: scan the (a,b) index, filter b inside the
            // index, bitmap-sort the survivors, fetch full rows (MVCC).
            TwoPredPlan::new(SystemId::B, "B1 idx(a,b) bitmap fetch", move |ta, tb| {
                PlanSpec::IndexFetch {
                    scan: IndexRangeSpec {
                        index: idx.ab,
                        range: KeyRange::on_leading(i64::MIN, ta, 2),
                    },
                    // Key space of idx(a,b): position 0 = a, position 1 = b.
                    key_filter: Predicate::single(ColRange::at_most(1, tb)),
                    fetch: FetchKind::BitmapSorted,
                    residual: Predicate::always_true(),
                    project: Projection::All,
                }
            }),
            TwoPredPlan::new(SystemId::B, "B2 idx(b,a) bitmap fetch", move |ta, tb| {
                PlanSpec::IndexFetch {
                    scan: IndexRangeSpec {
                        index: idx.ba,
                        range: KeyRange::on_leading(i64::MIN, tb, 2),
                    },
                    key_filter: Predicate::single(ColRange::at_most(1, ta)),
                    fetch: FetchKind::BitmapSorted,
                    residual: Predicate::always_true(),
                    project: Projection::All,
                }
            }),
            TwoPredPlan::new(SystemId::B, "B3 idx(a) bitmap fetch", move |ta, tb| {
                PlanSpec::IndexFetch {
                    scan: IndexRangeSpec {
                        index: idx.a,
                        range: KeyRange::on_leading(i64::MIN, ta, 1),
                    },
                    key_filter: Predicate::always_true(),
                    fetch: FetchKind::BitmapSorted,
                    residual: Predicate::single(ColRange::at_most(COL_B, tb)),
                    project: Projection::All,
                }
            }),
            TwoPredPlan::new(SystemId::B, "B4 idx(b) bitmap fetch", move |ta, tb| {
                PlanSpec::IndexFetch {
                    scan: IndexRangeSpec {
                        index: idx.b,
                        range: KeyRange::on_leading(i64::MIN, tb, 1),
                    },
                    key_filter: Predicate::always_true(),
                    fetch: FetchKind::BitmapSorted,
                    residual: Predicate::single(ColRange::at_most(COL_A, ta)),
                    project: Projection::All,
                }
            }),
        ],
        SystemId::C => vec![
            // Figure 9's plan: covering two-column index driven by MDAM.
            TwoPredPlan::new(SystemId::C, "C1 mdam(a,b) covering", move |ta, tb| PlanSpec::Mdam {
                index: idx.ab,
                col_ranges: vec![(i64::MIN, ta), (i64::MIN, tb)],
                project: Projection::All,
            }),
            TwoPredPlan::new(SystemId::C, "C2 mdam(b,a) covering", move |ta, tb| PlanSpec::Mdam {
                index: idx.ba,
                col_ranges: vec![(i64::MIN, tb), (i64::MIN, ta)],
                project: Projection::All,
            }),
            // The same covering indexes without MDAM: range on the leading
            // column, residual filter on the second (the ablation that
            // shows why "only if fully exploited using MDAM").
            TwoPredPlan::new(SystemId::C, "C3 covering(a,b) scan", move |ta, tb| {
                PlanSpec::CoveringIndexScan {
                    scan: IndexRangeSpec {
                        index: idx.ab,
                        range: KeyRange::on_leading(i64::MIN, ta, 2),
                    },
                    residual: Predicate::single(ColRange::at_most(1, tb)),
                    project: Projection::All,
                }
            }),
            TwoPredPlan::new(SystemId::C, "C4 covering(b,a) scan", move |ta, tb| {
                PlanSpec::CoveringIndexScan {
                    scan: IndexRangeSpec {
                        index: idx.ba,
                        range: KeyRange::on_leading(i64::MIN, tb, 2),
                    },
                    residual: Predicate::single(ColRange::at_most(1, ta)),
                    project: Projection::All,
                }
            }),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustmap_executor::{execute_count, ExecCtx};
    use robustmap_storage::Session;
    use robustmap_workload::{TableBuilder, WorkloadConfig};

    #[test]
    fn system_a_has_the_papers_seven_plans() {
        let w = TableBuilder::build(WorkloadConfig::small());
        assert_eq!(two_predicate_plans(SystemId::A, &w).len(), 7);
        assert_eq!(two_predicate_plans(SystemId::B, &w).len(), 4);
        assert_eq!(two_predicate_plans(SystemId::C, &w).len(), 4);
    }

    #[test]
    fn all_fifteen_plans_agree_on_result_size() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let n = w.rows();
        for (sel_a, sel_b) in [(0.25, 0.5), (1.0, 1.0 / 64.0), (1.0 / 256.0, 1.0)] {
            let (ta, count_a) = w.cal_a.threshold_with_count(sel_a);
            let (tb, count_b) = w.cal_b.threshold_with_count(sel_b);
            assert_eq!(count_a, (n as f64 * sel_a) as u64);
            assert_eq!(count_b, (n as f64 * sel_b) as u64);
            let mut expected: Option<u64> = None;
            for system in SystemId::all() {
                for plan in two_predicate_plans(system, &w) {
                    let spec = plan.build(ta, tb);
                    let s = Session::with_pool_pages(256);
                    let ctx = ExecCtx::new(&w.db, &s, 1 << 22);
                    let stats = execute_count(&spec, &ctx).unwrap();
                    match expected {
                        None => expected = Some(stats.rows_out),
                        Some(e) => assert_eq!(
                            stats.rows_out, e,
                            "{} at ({sel_a}, {sel_b})",
                            plan.name
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn plan_names_are_unique() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let mut names = std::collections::HashSet::new();
        for system in SystemId::all() {
            for plan in two_predicate_plans(system, &w) {
                assert!(names.insert(plan.name.clone()), "duplicate {}", plan.name);
            }
        }
        assert_eq!(names.len(), 15);
    }
}
