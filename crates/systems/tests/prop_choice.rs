//! Property-based tests for the `choice` API: the contracts the rest of
//! the repo leans on.
//!
//! * `ChoicePolicy::Point` reproduces the legacy `choose_plan` indices
//!   bit-identically over the full 15-plan catalog (the pinning test the
//!   deprecated shim's docs promise);
//! * `ChoicePolicy::Robust` with a single hypothesis and zero penalty
//!   degenerates to the point policy exactly;
//! * tie-breaks are deterministic (lower index wins, repeat calls agree);
//! * every [`Choice`] is internally coherent: `margin >= 0`,
//!   `runner_up != plan`, the runner-up never scores below the winner.

#![allow(deprecated)] // the legacy shims are the reference implementations here

use std::sync::OnceLock;

use proptest::prelude::*;
use robustmap_storage::CostModel;
use robustmap_systems::choice::{Choice, ChoicePolicy, Chooser};
use robustmap_systems::{
    choose_plan, estimate_cost, CatalogStats, RobustConfig, SelEstimates, SelHypothesis,
    SwitchPolicy, SystemId, CARDINALITY_NOISE_ROWS,
};
use robustmap_workload::{TableBuilder, Workload, WorkloadConfig};

/// One shared mid-size workload: catalogs and statistics are deterministic,
/// so every property case can reuse it.
fn workload() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| TableBuilder::build(WorkloadConfig::with_rows(1 << 14)))
}

fn full_catalog(w: &Workload) -> Vec<robustmap_systems::TwoPredPlan> {
    SystemId::all().into_iter().flat_map(|s| robustmap_systems::two_predicate_plans(s, w)).collect()
}

/// A selectivity from a dense grid over (0, 1] — the sweep range every
/// figure uses, plus the clamping edges.
fn sel_from(exp2: u32, jitter: f64) -> f64 {
    (0.5f64.powi(exp2 as i32) * (1.0 + jitter)).clamp(0.0, 1.0)
}

/// A synthetic compile-time choice carrying just the fields
/// [`SwitchPolicy`] reads — the cardinality contracts are about the
/// margin, not which plan won.
fn dummy_choice(margin: f64) -> Choice {
    Choice {
        plan: 0,
        name: "synthetic".to_string(),
        score: 1.0,
        expected: 1.0,
        tail: 1.0,
        runner_up: Some(1),
        margin,
    }
}

fn coherent(c: &Choice, plan_count: usize) {
    assert!(c.plan < plan_count);
    assert!(c.margin >= 0.0, "margin {}", c.margin);
    assert!(c.score.is_finite() && c.expected.is_finite() && c.tail.is_finite());
    if let Some(r) = c.runner_up {
        assert_ne!(r, c.plan, "runner-up must differ from the winner");
        assert!(r < plan_count);
    } else {
        assert_eq!(plan_count, 1, "only a singleton catalog lacks a runner-up");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Point policy == legacy `choose_plan`, plan index for plan index,
    /// over the full 15-plan catalog and arbitrary (clamped) estimates.
    #[test]
    fn point_policy_is_bit_identical_to_the_legacy_chooser(
        exp_a in 0u32..=14,
        exp_b in 0u32..=14,
        jitter_a in 0.0f64..1.0,
        jitter_b in 0.0f64..1.0,
        err_exp in 0i64..=18,
    ) {
        let w = workload();
        let plans = full_catalog(w);
        prop_assert_eq!(plans.len(), 15);
        let stats = CatalogStats::of(w);
        let model = CostModel::hdd_2009();
        let (sa, sb) = (sel_from(exp_a, jitter_a), sel_from(exp_b, jitter_b));
        let (ta, tb) = (w.cal_a.threshold(sa), w.cal_b.threshold(sb));
        let err = 2.0f64.powi(err_exp as i32 - 9);
        let est = SelEstimates::with_error(sa, sb, err, 1.0 / err.max(1e-12));
        let legacy = choose_plan(&plans, ta, tb, &stats, &est, &model);
        let chooser =
            Chooser { plans: &plans, stats: &stats, model: &model, policy: ChoicePolicy::Point };
        let choice = chooser.choose_at(&est, ta, tb);
        prop_assert_eq!(choice.plan, legacy);
        // And through the trait path with the estimates as the estimator.
        prop_assert_eq!(chooser.choose(&est, ta, tb).plan, legacy);
        // The reported score is exactly the winner's estimated cost.
        let cost = estimate_cost(&plans[legacy].build(ta, tb), &stats, &est, &model);
        prop_assert_eq!(choice.score, cost);
        coherent(&choice, plans.len());
    }

    /// Robust with one hypothesis and zero penalty == point, exactly.
    #[test]
    fn degenerate_robust_policy_equals_point(
        exp_a in 0u32..=14,
        exp_b in 0u32..=14,
        tail_q in 0.0f64..=1.0,
    ) {
        let w = workload();
        let plans = full_catalog(w);
        let stats = CatalogStats::of(w);
        let model = CostModel::hdd_2009();
        let (sa, sb) = (sel_from(exp_a, 0.0), sel_from(exp_b, 0.0));
        let (ta, tb) = (w.cal_a.threshold(sa), w.cal_b.threshold(sb));
        let est = SelEstimates::exact(sa, sb);
        let region = [SelHypothesis { est, weight: 1.0 }];
        let cfg = RobustConfig { tail_quantile: tail_q, penalty_weight: 0.0 };
        let point = Chooser {
            plans: &plans, stats: &stats, model: &model, policy: ChoicePolicy::Point,
        }
        .choose_at(&est, ta, tb);
        let robust = Chooser {
            plans: &plans, stats: &stats, model: &model, policy: ChoicePolicy::Robust(cfg),
        }
        .choose_over(&region, ta, tb);
        prop_assert_eq!(robust.plan, point.plan);
        prop_assert_eq!(robust.score, point.score, "zero penalty: score is the point cost");
        prop_assert_eq!(robust.runner_up, point.runner_up);
        coherent(&robust, plans.len());
    }

    /// Tie-breaks are deterministic: a catalog with every plan duplicated
    /// always picks out of the first copies (the lower index), and repeat
    /// calls agree.
    #[test]
    fn tie_breaks_are_deterministic(
        exp_a in 0u32..=14,
        exp_b in 0u32..=14,
        robust in any::<bool>(),
    ) {
        let w = workload();
        let mut plans = full_catalog(w);
        plans.extend(full_catalog(w)); // indices 15.. are exact duplicates
        let stats = CatalogStats::of(w);
        let model = CostModel::hdd_2009();
        let policy = if robust {
            ChoicePolicy::Robust(RobustConfig::default())
        } else {
            ChoicePolicy::Point
        };
        let chooser = Chooser { plans: &plans, stats: &stats, model: &model, policy };
        let (sa, sb) = (sel_from(exp_a, 0.0), sel_from(exp_b, 0.0));
        let (ta, tb) = (w.cal_a.threshold(sa), w.cal_b.threshold(sb));
        let est = SelEstimates::exact(sa, sb);
        let first = chooser.choose(&est, ta, tb);
        prop_assert!(first.plan < 15, "ties must break to the lower index");
        // The duplicate scores identically, so the margin to it is 0 and
        // selection must still be stable across calls.
        let again = chooser.choose(&est, ta, tb);
        prop_assert_eq!(&first, &again);
        coherent(&first, plans.len());
    }

    /// `SwitchPolicy::should_switch` is monotone in the observed
    /// cardinality: once an observation trips the policy, every larger
    /// observation trips it too, and nothing at or below the credible
    /// band's upper edge ever trips.
    #[test]
    fn switch_policy_is_monotone_in_observed(
        expected in 0.0f64..1e6,
        band_factor in 0.25f64..8.0,
        margin in 0.0f64..1e4,
        penalty in 0.01f64..4.0,
        observed in 0u64..4_000_000,
        delta in 0u64..4_000_000,
    ) {
        let choice = dummy_choice(margin);
        let cfg = RobustConfig { tail_quantile: 0.9, penalty_weight: penalty };
        let policy = SwitchPolicy::from_choice(&choice, expected, band_factor, cfg);
        prop_assert_eq!(
            policy.band_hi.to_bits(),
            (expected * band_factor + CARDINALITY_NOISE_ROWS).to_bits()
        );
        if policy.should_switch(observed) {
            prop_assert!(
                policy.should_switch(observed + delta),
                "tripped at {observed} but not at {}", observed + delta
            );
        }
        // At or below the band edge never trips (the noise floor's job).
        let in_band = policy.band_hi.floor().clamp(0.0, 4e6) as u64;
        prop_assert!(!policy.should_switch(in_band));
    }

    /// The degenerate policies never switch and never pay: margin ∞, zero
    /// penalty, and the explicit `SwitchPolicy::never()` are all inert for
    /// any observation and any re-costed comparison.
    #[test]
    fn degenerate_switch_policies_are_inert(
        expected in 0.0f64..1e6,
        observed in 0u64..4_000_000,
        remaining in 0.0f64..1e9,
        alternative in 0.0f64..1e9,
        penalty in 0.01f64..4.0,
    ) {
        let live_cfg = RobustConfig { tail_quantile: 0.9, penalty_weight: penalty };
        let infinite_margin = SwitchPolicy::from_choice(
            &dummy_choice(f64::INFINITY), expected, 0.5, live_cfg,
        );
        let zero_penalty = SwitchPolicy::from_choice(
            &dummy_choice(0.0),
            expected,
            0.5,
            RobustConfig { tail_quantile: 0.9, penalty_weight: 0.0 },
        );
        for policy in [infinite_margin, zero_penalty, SwitchPolicy::never()] {
            prop_assert!(!policy.should_switch(observed));
            prop_assert!(!policy.switch_pays(remaining, alternative));
        }
    }

    /// `switch_pays` demands strict dominance past the hedging slack: it
    /// never fires when continuing is at least as cheap, and it is
    /// monotone in how much the corrected continue-cost exceeds the
    /// alternative.
    #[test]
    fn switch_pays_requires_strict_dominance(
        margin in 0.0f64..1e4,
        penalty in 0.01f64..4.0,
        remaining in 0.0f64..1e9,
        alternative in 0.0f64..1e9,
        extra in 0.0f64..1e9,
    ) {
        let cfg = RobustConfig { tail_quantile: 0.9, penalty_weight: penalty };
        let policy = SwitchPolicy::from_choice(&dummy_choice(margin), 100.0, 2.0, cfg);
        if remaining <= alternative {
            prop_assert!(!policy.switch_pays(remaining, alternative));
        }
        if policy.switch_pays(remaining, alternative) {
            prop_assert!(policy.switch_pays(remaining + extra, alternative));
        }
    }

    /// Choices are coherent for arbitrary weighted regions: margin >= 0,
    /// runner_up != plan, and the winner's score is the region minimum.
    #[test]
    fn choices_over_arbitrary_regions_are_coherent(
        exp_a in 0u32..=14,
        exp_b in 0u32..=14,
        spread in 1.0f64..64.0,
        weight in 0.05f64..0.95,
        penalty in 0.0f64..4.0,
    ) {
        let w = workload();
        let plans = full_catalog(w);
        let stats = CatalogStats::of(w);
        let model = CostModel::hdd_2009();
        let (sa, sb) = (sel_from(exp_a, 0.0), sel_from(exp_b, 0.0));
        let (ta, tb) = (w.cal_a.threshold(sa), w.cal_b.threshold(sb));
        let region = [
            SelHypothesis { est: SelEstimates::exact(sa / spread, sb), weight },
            SelHypothesis { est: SelEstimates::exact(sa, sb / spread), weight: 1.0 - weight },
        ];
        let cfg = RobustConfig { tail_quantile: 0.9, penalty_weight: penalty };
        let chooser = Chooser {
            plans: &plans, stats: &stats, model: &model, policy: ChoicePolicy::Robust(cfg),
        };
        let c = chooser.choose_over(&region, ta, tb);
        coherent(&c, plans.len());
        prop_assert!(c.tail >= 0.0 && c.expected >= 0.0);
        prop_assert!(c.score >= c.expected, "penalty adds a nonnegative term");
        // No other plan scores strictly below the winner.
        for (i, plan) in plans.iter().enumerate() {
            let (e, t) = robustmap_systems::robust::region_cost(
                plan, ta, tb, &stats, &region, &model, &cfg,
            );
            let score = e + cfg.penalty_weight * t;
            prop_assert!(
                score >= c.score || i == c.plan,
                "plan {i} scores {score} below the winner's {}",
                c.score
            );
        }
    }
}
