//! Property-based tests for the `choice` API: the contracts the rest of
//! the repo leans on.
//!
//! * `ChoicePolicy::Point` reproduces the legacy `choose_plan` indices
//!   bit-identically over the full 15-plan catalog (the pinning test the
//!   deprecated shim's docs promise);
//! * `ChoicePolicy::Robust` with a single hypothesis and zero penalty
//!   degenerates to the point policy exactly;
//! * tie-breaks are deterministic (lower index wins, repeat calls agree);
//! * every [`Choice`] is internally coherent: `margin >= 0`,
//!   `runner_up != plan`, the runner-up never scores below the winner.

#![allow(deprecated)] // the legacy shims are the reference implementations here

use std::sync::OnceLock;

use proptest::prelude::*;
use robustmap_storage::CostModel;
use robustmap_systems::choice::{Choice, ChoicePolicy, Chooser};
use robustmap_systems::{
    choose_plan, estimate_cost, CatalogStats, RobustConfig, SelEstimates, SelHypothesis, SystemId,
};
use robustmap_workload::{TableBuilder, Workload, WorkloadConfig};

/// One shared mid-size workload: catalogs and statistics are deterministic,
/// so every property case can reuse it.
fn workload() -> &'static Workload {
    static W: OnceLock<Workload> = OnceLock::new();
    W.get_or_init(|| TableBuilder::build(WorkloadConfig::with_rows(1 << 14)))
}

fn full_catalog(w: &Workload) -> Vec<robustmap_systems::TwoPredPlan> {
    SystemId::all().into_iter().flat_map(|s| robustmap_systems::two_predicate_plans(s, w)).collect()
}

/// A selectivity from a dense grid over (0, 1] — the sweep range every
/// figure uses, plus the clamping edges.
fn sel_from(exp2: u32, jitter: f64) -> f64 {
    (0.5f64.powi(exp2 as i32) * (1.0 + jitter)).clamp(0.0, 1.0)
}

fn coherent(c: &Choice, plan_count: usize) {
    assert!(c.plan < plan_count);
    assert!(c.margin >= 0.0, "margin {}", c.margin);
    assert!(c.score.is_finite() && c.expected.is_finite() && c.tail.is_finite());
    if let Some(r) = c.runner_up {
        assert_ne!(r, c.plan, "runner-up must differ from the winner");
        assert!(r < plan_count);
    } else {
        assert_eq!(plan_count, 1, "only a singleton catalog lacks a runner-up");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Point policy == legacy `choose_plan`, plan index for plan index,
    /// over the full 15-plan catalog and arbitrary (clamped) estimates.
    #[test]
    fn point_policy_is_bit_identical_to_the_legacy_chooser(
        exp_a in 0u32..=14,
        exp_b in 0u32..=14,
        jitter_a in 0.0f64..1.0,
        jitter_b in 0.0f64..1.0,
        err_exp in 0i64..=18,
    ) {
        let w = workload();
        let plans = full_catalog(w);
        prop_assert_eq!(plans.len(), 15);
        let stats = CatalogStats::of(w);
        let model = CostModel::hdd_2009();
        let (sa, sb) = (sel_from(exp_a, jitter_a), sel_from(exp_b, jitter_b));
        let (ta, tb) = (w.cal_a.threshold(sa), w.cal_b.threshold(sb));
        let err = 2.0f64.powi(err_exp as i32 - 9);
        let est = SelEstimates::with_error(sa, sb, err, 1.0 / err.max(1e-12));
        let legacy = choose_plan(&plans, ta, tb, &stats, &est, &model);
        let chooser =
            Chooser { plans: &plans, stats: &stats, model: &model, policy: ChoicePolicy::Point };
        let choice = chooser.choose_at(&est, ta, tb);
        prop_assert_eq!(choice.plan, legacy);
        // And through the trait path with the estimates as the estimator.
        prop_assert_eq!(chooser.choose(&est, ta, tb).plan, legacy);
        // The reported score is exactly the winner's estimated cost.
        let cost = estimate_cost(&plans[legacy].build(ta, tb), &stats, &est, &model);
        prop_assert_eq!(choice.score, cost);
        coherent(&choice, plans.len());
    }

    /// Robust with one hypothesis and zero penalty == point, exactly.
    #[test]
    fn degenerate_robust_policy_equals_point(
        exp_a in 0u32..=14,
        exp_b in 0u32..=14,
        tail_q in 0.0f64..=1.0,
    ) {
        let w = workload();
        let plans = full_catalog(w);
        let stats = CatalogStats::of(w);
        let model = CostModel::hdd_2009();
        let (sa, sb) = (sel_from(exp_a, 0.0), sel_from(exp_b, 0.0));
        let (ta, tb) = (w.cal_a.threshold(sa), w.cal_b.threshold(sb));
        let est = SelEstimates::exact(sa, sb);
        let region = [SelHypothesis { est, weight: 1.0 }];
        let cfg = RobustConfig { tail_quantile: tail_q, penalty_weight: 0.0 };
        let point = Chooser {
            plans: &plans, stats: &stats, model: &model, policy: ChoicePolicy::Point,
        }
        .choose_at(&est, ta, tb);
        let robust = Chooser {
            plans: &plans, stats: &stats, model: &model, policy: ChoicePolicy::Robust(cfg),
        }
        .choose_over(&region, ta, tb);
        prop_assert_eq!(robust.plan, point.plan);
        prop_assert_eq!(robust.score, point.score, "zero penalty: score is the point cost");
        prop_assert_eq!(robust.runner_up, point.runner_up);
        coherent(&robust, plans.len());
    }

    /// Tie-breaks are deterministic: a catalog with every plan duplicated
    /// always picks out of the first copies (the lower index), and repeat
    /// calls agree.
    #[test]
    fn tie_breaks_are_deterministic(
        exp_a in 0u32..=14,
        exp_b in 0u32..=14,
        robust in any::<bool>(),
    ) {
        let w = workload();
        let mut plans = full_catalog(w);
        plans.extend(full_catalog(w)); // indices 15.. are exact duplicates
        let stats = CatalogStats::of(w);
        let model = CostModel::hdd_2009();
        let policy = if robust {
            ChoicePolicy::Robust(RobustConfig::default())
        } else {
            ChoicePolicy::Point
        };
        let chooser = Chooser { plans: &plans, stats: &stats, model: &model, policy };
        let (sa, sb) = (sel_from(exp_a, 0.0), sel_from(exp_b, 0.0));
        let (ta, tb) = (w.cal_a.threshold(sa), w.cal_b.threshold(sb));
        let est = SelEstimates::exact(sa, sb);
        let first = chooser.choose(&est, ta, tb);
        prop_assert!(first.plan < 15, "ties must break to the lower index");
        // The duplicate scores identically, so the margin to it is 0 and
        // selection must still be stable across calls.
        let again = chooser.choose(&est, ta, tb);
        prop_assert_eq!(&first, &again);
        coherent(&first, plans.len());
    }

    /// Choices are coherent for arbitrary weighted regions: margin >= 0,
    /// runner_up != plan, and the winner's score is the region minimum.
    #[test]
    fn choices_over_arbitrary_regions_are_coherent(
        exp_a in 0u32..=14,
        exp_b in 0u32..=14,
        spread in 1.0f64..64.0,
        weight in 0.05f64..0.95,
        penalty in 0.0f64..4.0,
    ) {
        let w = workload();
        let plans = full_catalog(w);
        let stats = CatalogStats::of(w);
        let model = CostModel::hdd_2009();
        let (sa, sb) = (sel_from(exp_a, 0.0), sel_from(exp_b, 0.0));
        let (ta, tb) = (w.cal_a.threshold(sa), w.cal_b.threshold(sb));
        let region = [
            SelHypothesis { est: SelEstimates::exact(sa / spread, sb), weight },
            SelHypothesis { est: SelEstimates::exact(sa, sb / spread), weight: 1.0 - weight },
        ];
        let cfg = RobustConfig { tail_quantile: 0.9, penalty_weight: penalty };
        let chooser = Chooser {
            plans: &plans, stats: &stats, model: &model, policy: ChoicePolicy::Robust(cfg),
        };
        let c = chooser.choose_over(&region, ta, tb);
        coherent(&c, plans.len());
        prop_assert!(c.tail >= 0.0 && c.expected >= 0.0);
        prop_assert!(c.score >= c.expected, "penalty adds a nonnegative term");
        // No other plan scores strictly below the winner.
        for (i, plan) in plans.iter().enumerate() {
            let (e, t) = robustmap_systems::robust::region_cost(
                plan, ta, tb, &stats, &region, &model, &cfg,
            );
            let score = e + cfg.penalty_weight * t;
            prop_assert!(
                score >= c.score || i == c.plan,
                "plan {i} scores {score} below the winner's {}",
                c.score
            );
        }
    }
}
