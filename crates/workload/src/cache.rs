//! The serialized workload cache.
//!
//! Building the default workload (2^20 rows, five indexes, two
//! calibrators) costs seconds of generation, sorting and bulk-loading —
//! and before this cache existed it was paid again by *every* binary and
//! test invocation that needed the table.  The cache makes that a one-time
//! cost per configuration: [`store`] serializes a built [`Workload`] to a
//! content-addressed file, [`load`] reconstructs it bit-identically.
//!
//! ## Layout and addressing
//!
//! Files live under `target/workload-cache/` at the workspace root (see
//! [`cache_dir`]) and are named `wl-<rows>-<hash>.bin`, where `<hash>` is a
//! 64-bit FNV-1a over the full [`WorkloadConfig`] and the format version —
//! any config or format change addresses a different file.  The stored
//! config is compared on load, so even a hash collision cannot serve the
//! wrong workload.
//!
//! ## Format (version 1, little-endian)
//!
//! ```text
//! magic "RMWLC\x01\0\0" · config (rows, seed, dist tag+param)
//! heap: file id · page count · raw 8 KiB page images
//! 5 indexes: name · file id · key columns · sorted (key, rid) entries
//! calibrators a, b: sorted column values
//! trailing FNV-1a checksum of everything above
//! ```
//!
//! Heap pages round-trip byte-for-byte; indexes are re-bulk-loaded from
//! their sorted entries with the same fill factor the builder uses, which
//! reproduces the exact node layout (bulk loading is deterministic in its
//! input).  `tests/cache_determinism.rs` asserts the equivalence map-for-map.
//!
//! ## Writes are atomic
//!
//! [`store`] writes a temp file and renames it into place, so concurrent
//! test binaries never observe a half-written cache; a corrupt or
//! truncated file fails validation and is rebuilt.
//!
//! ## Environment overrides
//!
//! * `ROBUSTMAP_WORKLOAD_CACHE=<dir>` — use `<dir>` instead of the default;
//! * `ROBUSTMAP_WORKLOAD_CACHE=off` (or `0`) — disable the cache entirely
//!   ([`load`] always misses, [`store`] is a no-op);
//! * `ROBUSTMAP_WORKLOAD_CACHE_BUDGET=<bytes[K|M|G]>` — the directory's
//!   size budget (default 4 GiB; `off` disables pruning).  Every [`store`]
//!   prunes least-recently-used files until the budget holds, so large
//!   `--rows` sweeps cannot accumulate unbounded multi-GB caches;
//! * deleting the directory is always safe: `rm -rf target/workload-cache`.

use std::path::{Path, PathBuf};

use robustmap_storage::btree::Entry;
use robustmap_storage::page::PAGE_SIZE;
use robustmap_storage::{BTree, Database, FileId, HeapFile, Key, Rid, SlottedPage};

use crate::calib::Calibrator;
use crate::gen::{
    lineitem_schema, PredicateDistribution, Workload, WorkloadConfig, WorkloadIndexes,
    INDEX_DEFS, INDEX_FILL,
};

const MAGIC: &[u8; 8] = b"RMWLC\x01\0\0";
/// Bump on any change that alters what a given [`WorkloadConfig`] produces
/// — not just file-format changes but *generator semantics* too: the
/// distributions in `dist.rs`, row assembly or schema in `gen.rs`, heap
/// page packing, B+-tree bulk-load layout, [`INDEX_FILL`], calibrator
/// behaviour.  The version is part of the content hash, so a bump makes
/// every old file miss and rebuild; forgetting one silently serves
/// pre-change workloads to every binary and test.
///
/// Version 2: the stored config gained a mutation-epoch word (churned
/// tables are cached under epoch-specific keys).
const VERSION: u64 = 2;

/// Default size budget for the cache directory: 4 GiB.
pub const DEFAULT_CACHE_BUDGET: u64 = 4 << 30;

/// The cache's size budget in bytes, or `None` when pruning is disabled:
/// `$ROBUSTMAP_WORKLOAD_CACHE_BUDGET` if set (a byte count, optionally
/// suffixed `K`/`M`/`G`; `off`/`0`/`unlimited` disables pruning), else
/// [`DEFAULT_CACHE_BUDGET`].
///
/// [`store`] enforces the budget after every write by deleting
/// least-recently-used cache files — LRU by modification time, which
/// [`load`] refreshes on every hit — until the directory fits.  The file
/// just written is never pruned, so one workload larger than the whole
/// budget still caches (and evicts everything else).
pub fn cache_budget() -> Option<u64> {
    match std::env::var("ROBUSTMAP_WORKLOAD_CACHE_BUDGET") {
        Ok(v) => parse_budget(&v),
        Err(_) => Some(DEFAULT_CACHE_BUDGET),
    }
}

fn parse_budget(v: &str) -> Option<u64> {
    let v = v.trim();
    if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("unlimited") || v == "0" {
        return None;
    }
    let (digits, unit) = match v.as_bytes().last() {
        Some(b'k' | b'K') => (&v[..v.len() - 1], 1u64 << 10),
        Some(b'm' | b'M') => (&v[..v.len() - 1], 1 << 20),
        Some(b'g' | b'G') => (&v[..v.len() - 1], 1 << 30),
        _ => (v, 1),
    };
    match digits.trim().parse::<u64>() {
        // Any spelling of zero ("0", "0K", "0G") disables pruning rather
        // than setting a 0-byte budget that would evict the whole cache.
        Ok(0) => None,
        Ok(n) => Some(n.saturating_mul(unit)),
        Err(_) => {
            robustmap_obs::warn!(
                "workload cache: unparseable ROBUSTMAP_WORKLOAD_CACHE_BUDGET {v:?}; \
                 using the default ({DEFAULT_CACHE_BUDGET} bytes)"
            );
            Some(DEFAULT_CACHE_BUDGET)
        }
    }
}

/// The cache directory: `$ROBUSTMAP_WORKLOAD_CACHE` if set (its value
/// `off`/`0` disables caching), else `<workspace>/target/workload-cache`.
pub fn cache_dir() -> Option<PathBuf> {
    match std::env::var("ROBUSTMAP_WORKLOAD_CACHE") {
        Ok(v) if v == "off" || v == "0" => None,
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => {
            let workspace = Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("crates/workload has a workspace root");
            Some(workspace.join("target").join("workload-cache"))
        }
    }
}

/// 64-bit FNV-1a (byte-wise; used for the small config hash).
pub(crate) fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a folded over 8-byte words — the payload checksum.  The cache file
/// is hundreds of megabytes at full scale; a byte-wise pass would cost a
/// noticeable fraction of the build time it is meant to save.
pub(crate) fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = FNV_SEED;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h ^= u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    fnv1a(h, chunks.remainder())
}

pub(crate) const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

fn dist_code(d: PredicateDistribution) -> (u64, u64) {
    match d {
        PredicateDistribution::Permutation => (0, 0),
        PredicateDistribution::Uniform => (1, 0),
        PredicateDistribution::ZipfHundredths(h) => (2, h as u64),
        PredicateDistribution::CorrelatedHundredths(rho) => (3, rho as u64),
    }
}

/// The content hash a configuration is addressed by.
pub fn config_hash(config: &WorkloadConfig) -> u64 {
    let (tag, param) = dist_code(config.predicate_dist);
    let mut h = FNV_SEED;
    for word in [VERSION, config.rows, config.seed, tag, param, config.mutation_epoch] {
        h = fnv1a(h, &word.to_le_bytes());
    }
    h
}

/// The file a configuration would be cached at, or `None` when caching is
/// disabled.
pub fn cache_path(config: &WorkloadConfig) -> Option<PathBuf> {
    cache_dir().map(|d| d.join(format!("wl-{}-{:016x}.bin", config.rows, config_hash(config))))
}

// ---------------------------------------------------------------- writing

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Serialize `w` into the cache.  No-op when caching is disabled; I/O
/// errors are reported to stderr and otherwise ignored (the cache is an
/// accelerator, not a correctness dependency).
pub fn store(w: &Workload) {
    let Some(path) = cache_path(&w.config) else { return };
    let mut out = Writer::new();
    out.bytes(MAGIC);
    let (tag, param) = dist_code(w.config.predicate_dist);
    out.u64(w.config.rows);
    out.u64(w.config.seed);
    out.u64(tag);
    out.u64(param);
    out.u64(w.config.mutation_epoch);

    // Heap: raw page images.
    let heap = &w.db.table(w.table).heap;
    out.u64(heap.file_id().0 as u64);
    out.u64(heap.page_count() as u64);
    for p in 0..heap.page_count() {
        out.bytes(heap.page(p).expect("page in range").as_bytes());
    }

    // Indexes: sorted entries, re-bulk-loaded on read.
    out.u64(INDEX_DEFS.len() as u64);
    for (slot, (name, cols)) in INDEX_DEFS.iter().enumerate() {
        let def = w.db.index(index_id_at(w, slot));
        debug_assert_eq!(&def.name, name);
        debug_assert_eq!(def.key_columns, *cols);
        out.u64(def.tree.file_id().0 as u64);
        out.u64(def.tree.key_arity() as u64);
        out.u64(def.tree.len());
        for (key, rid) in def.tree.collect_all() {
            for &v in key.values() {
                out.i64(v);
            }
            out.u64(rid.to_u64());
        }
    }

    // Calibrators.
    for cal in [&w.cal_a, &w.cal_b] {
        out.u64(cal.len());
        for &v in cal.sorted_values() {
            out.i64(v);
        }
    }

    write_cache_file(&path, out.buf);
}

/// Append the payload checksum and install `payload` at `path` atomically
/// (temp file + rename), then prune the directory to the size budget.
/// Shared by the workload cache and the joint-statistics cache
/// ([`crate::stats`]); best-effort like every cache write.
pub(crate) fn write_cache_file(path: &Path, mut payload: Vec<u8>) {
    let checksum = checksum64(&payload);
    payload.extend_from_slice(&checksum.to_le_bytes());
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(path.parent().expect("cache file has a directory"))?;
        // The temp name must be unique per *call*, not just per process:
        // threads of one test binary can miss on the same config
        // concurrently, and a shared temp path would interleave their
        // writes before one rename installs the mixed-content file.
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
        std::fs::write(&tmp, &payload)?;
        std::fs::rename(&tmp, path)
    };
    if let Err(e) = write() {
        robustmap_obs::warn!("workload cache: could not write {}: {e}", path.display());
    } else if let (Some(budget), Some(dir)) = (cache_budget(), path.parent()) {
        prune_to_budget(dir, budget, path);
    }
}

/// Read a cache file written by [`write_cache_file`], validate its
/// trailing checksum, refresh its LRU recency, and return the payload
/// (checksum stripped) — or `None` for a missing, truncated or corrupt
/// file.
pub(crate) fn read_cache_file(path: &Path) -> Option<Vec<u8>> {
    let mut data = std::fs::read(path).ok()?;
    if data.len() < 8 {
        return None;
    }
    let tail_at = data.len() - 8;
    let tail = u64::from_le_bytes(data[tail_at..].try_into().expect("8 bytes"));
    if checksum64(&data[..tail_at]) != tail {
        return None;
    }
    data.truncate(tail_at);
    touch(path); // refresh LRU recency only for files that validated
    Some(data)
}

/// Delete least-recently-used cache files (mtime order, ties broken by
/// name for determinism) until the directory's `wl-*.bin` total fits
/// `budget`.  `keep` — the file the caller just wrote — is never deleted.
/// Best-effort: races with concurrent stores or deletions are harmless
/// (the cache is an accelerator, not a correctness dependency).
fn prune_to_budget(dir: &Path, budget: u64, keep: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let now = std::time::SystemTime::now();
    // Temp files old enough that no in-flight store can still own them
    // (writes take seconds): an interrupted process would otherwise leave
    // multi-GB orphans that the budget accounting below never sees.
    let tmp_grace = std::time::Duration::from_secs(15 * 60);
    let mut files: Vec<(PathBuf, std::time::SystemTime, u64)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("wl-") {
            continue;
        }
        let Ok(md) = entry.metadata() else { continue };
        let mtime = md.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        if name.contains(".tmp.") {
            if now.duration_since(mtime).is_ok_and(|age| age > tmp_grace) {
                let _ = std::fs::remove_file(entry.path());
            }
            continue;
        }
        if !name.ends_with(".bin") {
            continue;
        }
        files.push((entry.path(), mtime, md.len()));
    }
    let mut total: u64 = files.iter().map(|f| f.2).sum();
    if total <= budget {
        return;
    }
    files.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    for (path, _, size) in files {
        if total <= budget {
            break;
        }
        if path == keep {
            continue;
        }
        if std::fs::remove_file(&path).is_ok() {
            total = total.saturating_sub(size);
        }
    }
}

/// Mark a cache file recently used (LRU bookkeeping for
/// [`prune_to_budget`]).  Best-effort — a read-only cache directory just
/// degrades LRU to FIFO.
fn touch(path: &Path) {
    let now = std::time::SystemTime::now();
    let _ = std::fs::File::options()
        .write(true)
        .open(path)
        .and_then(|f| f.set_times(std::fs::FileTimes::new().set_modified(now)));
}

fn index_id_at(w: &Workload, slot: usize) -> robustmap_storage::IndexId {
    [w.indexes.a, w.indexes.b, w.indexes.c, w.indexes.ab, w.indexes.ba][slot]
}

// ---------------------------------------------------------------- reading

pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        Some(slice)
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Deserialize the workload for `config`, or `None` on a miss (no file,
/// caching disabled, or a file that fails validation).
pub fn load(config: &WorkloadConfig) -> Option<Workload> {
    let path = cache_path(config)?;
    // Trailing checksum first: catches truncation and corruption cheaply.
    let payload = read_cache_file(&path)?;
    parse(&payload, config)
}

fn parse(payload: &[u8], config: &WorkloadConfig) -> Option<Workload> {
    if payload.len() < MAGIC.len() {
        return None;
    }
    let mut r = Reader { buf: payload, at: 0 };
    if r.take(MAGIC.len())? != MAGIC {
        return None;
    }
    let (tag, param) = dist_code(config.predicate_dist);
    if [r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?]
        != [config.rows, config.seed, tag, param, config.mutation_epoch]
    {
        return None;
    }

    // Heap.
    let heap_file = FileId(u32::try_from(r.u64()?).ok()?);
    let page_count = usize::try_from(r.u64()?).ok()?;
    let mut pages = Vec::with_capacity(page_count);
    for _ in 0..page_count {
        let image: &[u8; PAGE_SIZE] = r.take(PAGE_SIZE)?.try_into().expect("page-sized");
        pages.push(SlottedPage::from_bytes(image));
    }
    let heap = HeapFile::from_pages(heap_file, lineitem_schema(), pages);

    // Indexes: parse entries, then bulk-load all five in parallel.
    if r.u64()? != INDEX_DEFS.len() as u64 {
        return None;
    }
    let mut parsed: Vec<(FileId, usize, Vec<Entry>)> = Vec::with_capacity(INDEX_DEFS.len());
    for (_, cols) in INDEX_DEFS {
        let file = FileId(u32::try_from(r.u64()?).ok()?);
        let arity = usize::try_from(r.u64()?).ok()?;
        if arity != cols.len() {
            return None;
        }
        let len = usize::try_from(r.u64()?).ok()?;
        let mut entries = Vec::with_capacity(len);
        let mut vals = [0i64; robustmap_storage::btree::MAX_KEY_COLS];
        for _ in 0..len {
            for v in vals.iter_mut().take(arity) {
                *v = r.i64()?;
            }
            entries.push((Key::new(&vals[..arity]), Rid::from_u64(r.u64()?)));
        }
        if !entries.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        parsed.push((file, arity, entries));
    }
    let mut trees: Vec<Option<BTree>> = (0..parsed.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (out, (file, arity, entries)) in trees.iter_mut().zip(&parsed) {
            scope.spawn(move || {
                *out = Some(BTree::bulk_load(*file, *arity, entries, INDEX_FILL));
            });
        }
    });

    // Calibrators.
    let mut cals = Vec::with_capacity(2);
    for _ in 0..2 {
        let len = usize::try_from(r.u64()?).ok()?;
        let mut vals = Vec::with_capacity(len);
        for _ in 0..len {
            vals.push(r.i64()?);
        }
        if !vals.windows(2).all(|w| w[0] <= w[1]) {
            return None;
        }
        cals.push(Calibrator::from_sorted(vals));
    }
    let cal_b = cals.pop().expect("two calibrators");
    let cal_a = cals.pop().expect("two calibrators");
    if r.at != r.buf.len() {
        return None; // trailing garbage
    }

    // Reassemble the catalog in creation order.
    let mut db = Database::new();
    let table = db.attach_table("lineitem", heap);
    let mut ids = Vec::with_capacity(INDEX_DEFS.len());
    for ((name, cols), tree) in INDEX_DEFS.iter().zip(trees) {
        ids.push(db.attach_index(name, table, cols, tree.expect("worker finished")).ok()?);
    }
    Some(Workload {
        db,
        table,
        indexes: WorkloadIndexes { a: ids[0], b: ids[1], c: ids[2], ab: ids[3], ba: ids[4] },
        cal_a,
        cal_b,
        config: config.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TableBuilder;

    /// `ROBUSTMAP_WORKLOAD_CACHE` is process-global; tests that set it
    /// must not interleave.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn unique_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("robustmap-cache-test-{tag}-{}", std::process::id()))
    }

    /// Round-trip through serialize + parse (no filesystem, no env vars —
    /// those stay test-friendly and race-free).
    #[test]
    fn roundtrip_preserves_workload_exactly() {
        let _guard = ENV_LOCK.lock().unwrap();
        let config = WorkloadConfig::small();
        let built = TableBuilder::build(config.clone());

        // Serialize via the same code path as `store`, in memory.
        let dir = unique_dir("roundtrip");
        std::env::set_var("ROBUSTMAP_WORKLOAD_CACHE", &dir);
        store(&built);
        let loaded = load(&config).expect("cache hit after store");
        std::env::remove_var("ROBUSTMAP_WORKLOAD_CACHE");
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(loaded.rows(), built.rows());
        assert_eq!(loaded.heap_pages(), built.heap_pages());
        assert_eq!(loaded.config, built.config);
        // Heap pages byte-identical.
        let (h1, h2) = (&built.db.table(built.table).heap, &loaded.db.table(loaded.table).heap);
        for p in 0..h1.page_count() {
            assert_eq!(
                h1.page(p).unwrap().as_bytes().as_slice(),
                h2.page(p).unwrap().as_bytes().as_slice(),
                "heap page {p}"
            );
        }
        // Trees entry- and shape-identical.
        for slot in 0..INDEX_DEFS.len() {
            let t1 = &built.db.index(index_id_at(&built, slot)).tree;
            let t2 = &loaded.db.index(index_id_at(&loaded, slot)).tree;
            assert_eq!(t1.collect_all(), t2.collect_all(), "index {slot} entries");
            assert_eq!(t1.height(), t2.height(), "index {slot} height");
            assert_eq!(t1.node_count(), t2.node_count(), "index {slot} nodes");
            t2.check_invariants().unwrap();
        }
        // Calibrators agree on every power-of-two selectivity.
        for exp in 0..=12 {
            let sel = 0.5f64.powi(exp);
            assert_eq!(built.cal_a.threshold_with_count(sel), loaded.cal_a.threshold_with_count(sel));
            assert_eq!(built.cal_b.threshold_with_count(sel), loaded.cal_b.threshold_with_count(sel));
        }
    }

    #[test]
    fn corrupt_or_mismatched_files_miss() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = unique_dir("corrupt");
        std::env::set_var("ROBUSTMAP_WORKLOAD_CACHE", &dir);
        let config = WorkloadConfig::small();
        let built = TableBuilder::build(config.clone());
        store(&built);
        let path = cache_path(&config).unwrap();
        assert!(path.exists());

        // A different config misses even with a file present.
        let mut other = config.clone();
        other.seed ^= 1;
        assert!(load(&other).is_none());

        // Flip a payload byte: checksum rejects.
        let mut data = std::fs::read(&path).unwrap();
        data[MAGIC.len() + 3] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        assert!(load(&config).is_none());

        // Truncate: rejected.
        std::fs::write(&path, &data[..data.len() / 2]).unwrap();
        assert!(load(&config).is_none());

        std::env::remove_var("ROBUSTMAP_WORKLOAD_CACHE");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("ROBUSTMAP_WORKLOAD_CACHE", "off");
        assert!(cache_dir().is_none());
        let config = WorkloadConfig::small();
        assert!(cache_path(&config).is_none());
        let built = TableBuilder::build(config.clone());
        store(&built);
        assert!(load(&config).is_none());
        std::env::remove_var("ROBUSTMAP_WORKLOAD_CACHE");
    }

    #[test]
    fn config_hash_separates_configs() {
        let base = WorkloadConfig::small();
        let mut seed = base.clone();
        seed.seed += 1;
        let mut rows = base.clone();
        rows.rows *= 2;
        let zipf = WorkloadConfig {
            predicate_dist: PredicateDistribution::ZipfHundredths(110),
            ..base.clone()
        };
        let correlated = WorkloadConfig {
            predicate_dist: PredicateDistribution::CorrelatedHundredths(75),
            ..base.clone()
        };
        let correlated_other = WorkloadConfig {
            predicate_dist: PredicateDistribution::CorrelatedHundredths(50),
            ..base.clone()
        };
        let hashes = [&base, &seed, &rows, &zipf, &correlated, &correlated_other]
            .map(config_hash);
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn budget_parsing_handles_units_and_disabling() {
        assert_eq!(parse_budget("12345"), Some(12345));
        assert_eq!(parse_budget("64K"), Some(64 << 10));
        assert_eq!(parse_budget(" 8m "), Some(8 << 20));
        assert_eq!(parse_budget("2G"), Some(2 << 30));
        assert_eq!(parse_budget("off"), None);
        assert_eq!(parse_budget("unlimited"), None);
        assert_eq!(parse_budget("0"), None);
        // Any spelling of zero disables pruning; a 0-byte budget would
        // evict the whole cache on every store.
        assert_eq!(parse_budget("0K"), None);
        assert_eq!(parse_budget("0g"), None);
        // Unparseable values warn and fall back to the default.
        assert_eq!(parse_budget("lots"), Some(DEFAULT_CACHE_BUDGET));
    }

    #[test]
    fn cache_budget_evicts_least_recently_used_on_write() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = unique_dir("budget");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("ROBUSTMAP_WORKLOAD_CACHE", &dir);
        std::env::remove_var("ROBUSTMAP_WORKLOAD_CACHE_BUDGET");

        let cfg = |s: u64| WorkloadConfig { seed: 0xB0D6_E700 + s, ..WorkloadConfig::small() };
        store(&TableBuilder::build(cfg(0)));
        let size = std::fs::metadata(cache_path(&cfg(0)).unwrap()).unwrap().len();
        // Room for two files and change, not three.
        let budget = size * 5 / 2;
        std::env::set_var("ROBUSTMAP_WORKLOAD_CACHE_BUDGET", budget.to_string());

        let tick = || std::thread::sleep(std::time::Duration::from_millis(20));
        tick();
        store(&TableBuilder::build(cfg(1)));
        tick();
        // Loading cfg(0) refreshes its recency: cfg(1) becomes the LRU file.
        assert!(load(&cfg(0)).is_some());
        tick();
        store(&TableBuilder::build(cfg(2)));

        assert!(cache_path(&cfg(0)).unwrap().exists(), "recently loaded file survives");
        assert!(!cache_path(&cfg(1)).unwrap().exists(), "least-recently-used file evicted");
        assert!(cache_path(&cfg(2)).unwrap().exists(), "the just-written file is never evicted");
        let total: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".bin"))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(total <= budget, "total {total} over budget {budget}");

        std::env::remove_var("ROBUSTMAP_WORKLOAD_CACHE_BUDGET");
        std::env::remove_var("ROBUSTMAP_WORKLOAD_CACHE");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_cleaned_up_on_store() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = unique_dir("stale-tmp");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("ROBUSTMAP_WORKLOAD_CACHE", &dir);
        std::env::remove_var("ROBUSTMAP_WORKLOAD_CACHE_BUDGET");

        // An orphan from an interrupted store (old) and one that could
        // still be in flight (fresh): only the old one may be reaped.
        let old_tmp = dir.join("wl-4096-dead.tmp.1.0");
        let fresh_tmp = dir.join("wl-4096-live.tmp.2.0");
        for p in [&old_tmp, &fresh_tmp] {
            std::fs::write(p, b"orphan").unwrap();
        }
        let hour_ago = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        std::fs::File::options()
            .write(true)
            .open(&old_tmp)
            .unwrap()
            .set_times(std::fs::FileTimes::new().set_modified(hour_ago))
            .unwrap();

        let cfg = WorkloadConfig { seed: 0x7E3A_57A1E, ..WorkloadConfig::small() };
        store(&TableBuilder::build(cfg.clone()));

        assert!(!old_tmp.exists(), "stale orphan must be reaped");
        assert!(fresh_tmp.exists(), "a possibly in-flight temp file must survive");
        assert!(cache_path(&cfg).unwrap().exists());

        std::env::remove_var("ROBUSTMAP_WORKLOAD_CACHE");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_single_workload_still_caches() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = unique_dir("oversized");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("ROBUSTMAP_WORKLOAD_CACHE", &dir);
        // A budget smaller than any file: the just-written file must
        // survive (and evict everything else).
        std::env::set_var("ROBUSTMAP_WORKLOAD_CACHE_BUDGET", "1K");
        let a = WorkloadConfig { seed: 0xF00D, ..WorkloadConfig::small() };
        let b = WorkloadConfig { seed: 0xF00E, ..WorkloadConfig::small() };
        store(&TableBuilder::build(a.clone()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        store(&TableBuilder::build(b.clone()));
        assert!(!cache_path(&a).unwrap().exists(), "older file evicted");
        assert!(cache_path(&b).unwrap().exists(), "newest file kept despite the tiny budget");
        std::env::remove_var("ROBUSTMAP_WORKLOAD_CACHE_BUDGET");
        std::env::remove_var("ROBUSTMAP_WORKLOAD_CACHE");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
