//! Selectivity calibration: mapping target selectivities to predicate
//! constants.
//!
//! The paper's sweeps are phrased in selectivities ("query result sizes
//! differ by a factor of 2 between data points"); the plans need concrete
//! predicate constants.  A [`Calibrator`] is built from the actual column
//! values and answers both directions exactly:
//! `threshold(s)` gives the largest constant `t` with
//! `count(col <= t) <= s * n`, and `count_at_most(t)` / `selectivity(t)`
//! report the true result size for any constant.

/// Exact selectivity <-> constant mapping for one column.
#[derive(Debug, Clone)]
pub struct Calibrator {
    sorted: Vec<i64>,
}

impl Calibrator {
    /// Build from the column's values (any order).
    pub fn new(mut values: Vec<i64>) -> Self {
        values.sort_unstable();
        Calibrator { sorted: values }
    }

    /// Build from already-sorted values (the workload cache's load path).
    ///
    /// # Panics
    /// Panics (in debug builds) if `values` is not sorted.
    pub fn from_sorted(values: Vec<i64>) -> Self {
        debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "values not sorted");
        Calibrator { sorted: values }
    }

    /// The sorted values (the workload cache's store path).
    pub fn sorted_values(&self) -> &[i64] {
        &self.sorted
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        self.sorted.len() as u64
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Exact number of rows with `value <= t`.
    pub fn count_at_most(&self, t: i64) -> u64 {
        self.sorted.partition_point(|&v| v <= t) as u64
    }

    /// Exact selectivity of `value <= t`.
    pub fn selectivity(&self, t: i64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.count_at_most(t) as f64 / self.sorted.len() as f64
    }

    /// The predicate constant whose result size best matches `sel * n`
    /// rows: the value at the target rank (so for a permutation column the
    /// match is exact).  `sel` is clamped to `[0, 1]`.
    ///
    /// Returns `i64::MIN` for a target of zero rows (an empty result).
    pub fn threshold(&self, sel: f64) -> i64 {
        let n = self.sorted.len();
        if n == 0 {
            return i64::MIN;
        }
        let target = (sel.clamp(0.0, 1.0) * n as f64).round() as usize;
        if target == 0 {
            return i64::MIN;
        }
        self.sorted[target.min(n) - 1]
    }

    /// Convenience: constant and exact row count for a target selectivity.
    pub fn threshold_with_count(&self, sel: f64) -> (i64, u64) {
        let t = self.threshold(sel);
        (t, self.count_at_most(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Permutation, Zipf};

    #[test]
    fn permutation_calibration_is_exact() {
        let n = 4096u64;
        let mut p = Permutation::new(n, 11);
        let values: Vec<i64> = (0..n).map(|i| p.value(i)).collect();
        let cal = Calibrator::new(values);
        for exp in 0..=12 {
            let sel = 1.0 / (1u64 << exp) as f64;
            let (t, count) = cal.threshold_with_count(sel);
            assert_eq!(count, (n as f64 * sel).round() as u64, "sel 2^-{exp}");
            assert_eq!(t, count as i64 - 1); // permutation of 0..n
        }
    }

    #[test]
    fn zero_selectivity_yields_empty_result() {
        let cal = Calibrator::new((0..100).collect());
        let (t, count) = cal.threshold_with_count(0.0);
        assert_eq!(count, 0);
        assert_eq!(t, i64::MIN);
    }

    #[test]
    fn full_selectivity_covers_everything() {
        let cal = Calibrator::new((0..100).rev().collect());
        let (t, count) = cal.threshold_with_count(1.0);
        assert_eq!(count, 100);
        assert_eq!(t, 99);
    }

    #[test]
    fn skewed_columns_calibrate_to_true_counts() {
        let mut z = Zipf::new(256, 1.1, 3);
        let values: Vec<i64> = (0..20_000).map(|i| z.value(i)).collect();
        let cal = Calibrator::new(values.clone());
        for sel in [0.01, 0.1, 0.5, 0.9] {
            let (t, count) = cal.threshold_with_count(sel);
            let truth = values.iter().filter(|&&v| v <= t).count() as u64;
            assert_eq!(count, truth, "sel {sel}");
            // With heavy duplication the achieved selectivity can overshoot
            // (all duplicates of the boundary value are included), but it
            // must never undershoot the target.
            assert!(count as f64 >= sel * 20_000.0 - 1.0, "sel {sel} count {count}");
        }
    }

    #[test]
    fn counts_with_duplicates() {
        let cal = Calibrator::new(vec![5, 5, 5, 1, 1, 9]);
        assert_eq!(cal.count_at_most(0), 0);
        assert_eq!(cal.count_at_most(1), 2);
        assert_eq!(cal.count_at_most(5), 5);
        assert_eq!(cal.count_at_most(9), 6);
        assert!((cal.selectivity(5) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_calibrator_is_sane() {
        let cal = Calibrator::new(vec![]);
        assert!(cal.is_empty());
        assert_eq!(cal.threshold(0.5), i64::MIN);
        assert_eq!(cal.count_at_most(10), 0);
        assert_eq!(cal.selectivity(10), 0.0);
    }
}
