//! Data churn: deterministic insert/delete/update batches applied to a
//! built workload through the *charged* session path.
//!
//! The paper's maps are measured against a frozen database, but its thesis
//! — actual run-time conditions diverge from compile-time assumptions (§1)
//! — bites hardest when the data itself drifts.  This module turns the
//! static measurement database into a mutating one:
//!
//! * [`ChurnPlan`] is the generator: batch `step` is a **pure function of
//!   `(seed, step)`** (the same splitmix64 draw the statistics sampler
//!   uses), so any run over the same starting workload replays the exact
//!   same mutation sequence — the determinism contract every differential
//!   suite in this repo relies on.
//! * [`ChurnDriver`] is the applier: every heap append/tombstone and every
//!   B+-tree insert/delete for the five catalog indexes goes through a
//!   [`Session`], so mutation cost lands on the simulated clock like any
//!   other work.  Each applied batch bumps the workload's
//!   `config.mutation_epoch`, which invalidates every content-addressed
//!   cache key (`wl-*`, `wl-jstats-*`) for the pre-churn table.
//!
//! The driver reports each batch as an [`AppliedBatch`] — the `(a, b)`
//! deltas the incremental statistics in [`crate::stats_maint`] fold in,
//! plus the clock/I/O cost the batch charged.

use robustmap_obs::TraceEventKind;
use robustmap_storage::{AccessKind, IndexId, IoStats, Rid, Row, Session};

use crate::gen::{Workload, COL_A, COL_B};
use crate::stats::draw;

/// Configuration for a churn stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Value domain of the predicate columns (the base table's row count:
    /// permutation columns hold `0..domain`).
    pub domain: u64,
    /// Seed of the op stream; see [`ChurnPlan::batch`].
    pub seed: u64,
    /// Operations per batch.
    pub batch_ops: usize,
    /// Percent of operations that are inserts (0..=100).
    pub insert_pct: u8,
    /// Percent of operations that are deletes (0..=100, with
    /// `insert_pct + delete_pct <= 100`); the rest are updates.
    pub delete_pct: u8,
    /// Distribution drift in hundredths: inserted/updated rows draw column
    /// `a` uniformly from `100 - drift_hundredths` percent of the domain
    /// (the upper part by default, the lower with [`drift_down`]).  `0`
    /// reproduces the base uniform-over-domain shape (no drift); `50`
    /// concentrates all new values in one half, which steadily
    /// invalidates a frozen histogram's bucket masses.
    ///
    /// [`drift_down`]: ChurnConfig::drift_down
    pub drift_hundredths: u32,
    /// Drift direction: `false` concentrates new values in the *upper*
    /// `100 - drift_hundredths` percent of the domain, `true` in the
    /// *lower*.  Downward drift piles mass onto the small-selectivity
    /// thresholds, so a frozen histogram *under*-estimates exactly where
    /// index-plan/scan choice boundaries live.
    pub drift_down: bool,
}

impl ChurnConfig {
    /// A churn stream matched to `w`'s value domain: update-heavy
    /// (20% insert / 20% delete / 60% update, so the table size stays
    /// roughly constant), 1024-op batches, no drift.
    pub fn for_workload(w: &Workload) -> Self {
        ChurnConfig {
            domain: w.rows(),
            seed: 0xC4u64.wrapping_add(w.config.seed.rotate_left(9)),
            batch_ops: 1024,
            insert_pct: 20,
            delete_pct: 20,
            drift_hundredths: 0,
            drift_down: false,
        }
    }

    /// The same stream with the given upward drift (see
    /// [`ChurnConfig::drift_hundredths`]).
    pub fn with_drift(self, drift_hundredths: u32) -> Self {
        assert!(drift_hundredths < 100, "drift must leave a nonempty range");
        ChurnConfig { drift_hundredths, drift_down: false, ..self }
    }

    /// The same stream with the given *downward* drift (see
    /// [`ChurnConfig::drift_down`]).
    pub fn with_drift_down(self, drift_hundredths: u32) -> Self {
        assert!(drift_hundredths < 100, "drift must leave a nonempty range");
        ChurnConfig { drift_hundredths, drift_down: true, ..self }
    }
}

/// One abstract mutation.  Victims are named by an *ordinal*, resolved by
/// the driver against its live-row list at application time (`ordinal %
/// live_rows`) — the plan stays a pure function of `(seed, step)` without
/// having to know which rids exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// Append a new row with these predicate-column values.
    Insert {
        /// Value of column `a`.
        a: i64,
        /// Value of column `b`.
        b: i64,
        /// Value of column `c`.
        c: i64,
        /// Value of the payload column.
        payload: i64,
    },
    /// Tombstone the live row at this ordinal.
    Delete {
        /// Victim ordinal (`% live_rows` at application time).
        ordinal: u64,
    },
    /// Rewrite the predicate columns of the live row at this ordinal
    /// (applied as delete + re-insert, which is what the index
    /// maintenance must do anyway).
    Update {
        /// Victim ordinal (`% live_rows` at application time).
        ordinal: u64,
        /// New value of column `a`.
        a: i64,
        /// New value of column `b`.
        b: i64,
    },
}

/// The deterministic batch generator.
#[derive(Debug, Clone, Copy)]
pub struct ChurnPlan {
    cfg: ChurnConfig,
}

impl ChurnPlan {
    /// A plan over `cfg`.
    pub fn new(cfg: ChurnConfig) -> Self {
        assert!(cfg.domain >= 4, "domain too small");
        assert!(cfg.insert_pct as u32 + cfg.delete_pct as u32 <= 100, "op mix over 100%");
        assert!(cfg.drift_hundredths < 100, "drift must leave a nonempty range");
        ChurnPlan { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &ChurnConfig {
        &self.cfg
    }

    /// A drifted draw for column `a`: uniform over the upper (or, with
    /// [`ChurnConfig::drift_down`], the lower) `100 - drift_hundredths`
    /// percent of the domain.
    fn drifted_a(&self, r: u64) -> i64 {
        let lo = self.cfg.domain * self.cfg.drift_hundredths as u64 / 100;
        let v = r % (self.cfg.domain - lo);
        if self.cfg.drift_down { v as i64 } else { (lo + v) as i64 }
    }

    /// Batch `step` of the stream — a pure function of `(seed, step)`:
    /// calling it twice, in any order, from any driver, yields the same
    /// ops.  Each op consumes a fixed number of draws, so op `j` of batch
    /// `s` is draw-indexed at `s * batch_ops + j` exactly like
    /// `stats::draw`'s per-row sampling.
    pub fn batch(&self, step: u64) -> Vec<ChurnOp> {
        let n = self.cfg.domain;
        let mut ops = Vec::with_capacity(self.cfg.batch_ops);
        for j in 0..self.cfg.batch_ops as u64 {
            // Four independent draws per op: kind, victim/a, b, c+payload.
            let at = (step * self.cfg.batch_ops as u64 + j) * 4;
            let d0 = draw(self.cfg.seed, at);
            let d1 = draw(self.cfg.seed, at + 1);
            let d2 = draw(self.cfg.seed, at + 2);
            let d3 = draw(self.cfg.seed, at + 3);
            let kind = d0 % 100;
            ops.push(if kind < self.cfg.insert_pct as u64 {
                ChurnOp::Insert {
                    a: self.drifted_a(d1),
                    b: (d2 % n) as i64,
                    c: (d3 % n) as i64,
                    payload: (d3 >> 32) as i64 % (1 << 20),
                }
            } else if kind < (self.cfg.insert_pct + self.cfg.delete_pct) as u64 {
                ChurnOp::Delete { ordinal: d1 }
            } else {
                ChurnOp::Update { ordinal: d1, a: self.drifted_a(d2), b: (d3 % n) as i64 }
            });
        }
        ops
    }
}

/// What one applied batch did — the statistics-maintenance feed plus the
/// cost it charged.
#[derive(Debug, Clone, Default)]
pub struct AppliedBatch {
    /// `(a, b)` of every row added (inserts and the new half of updates).
    pub inserted: Vec<(i64, i64)>,
    /// `(a, b)` of every row removed (deletes and the old half of updates).
    pub deleted: Vec<(i64, i64)>,
    /// Heap rows touched (inserts + deletes + 2 per update).
    pub rows_applied: u64,
    /// Operations by kind: `(inserts, deletes, updates)`.
    pub ops: (u64, u64, u64),
    /// Simulated seconds the batch charged to the session.
    pub seconds: f64,
    /// I/O the batch charged to the session.
    pub io: IoStats,
}

/// Applies [`ChurnPlan`] batches to a workload through a charged session.
///
/// The driver owns the stream position and the live-rid list; applying the
/// same plan to the same starting workload is fully deterministic (see
/// `replaying_a_plan_is_deterministic`).  Batches must run strictly
/// *between* measurement sweeps — the catalog is shared-immutable during a
/// sweep — which the `&mut Workload` receiver enforces at compile time.
#[derive(Debug)]
pub struct ChurnDriver {
    plan: ChurnPlan,
    step: u64,
    live: Vec<Rid>,
    base_rows: u64,
    rows_touched: u64,
    next_orderkey: i64,
}

impl ChurnDriver {
    /// A driver positioned at step 0.  Enumerating the live rids scans the
    /// heap once, uncharged — it models the recovery-time bookkeeping a
    /// storage engine already has, not query work.
    pub fn new(w: &Workload, cfg: ChurnConfig) -> Self {
        let plan = ChurnPlan::new(cfg);
        let s = Session::with_pool_pages(0);
        let heap = &w.db.table(w.table).heap;
        let mut live = Vec::with_capacity(heap.row_count() as usize);
        let mut max_orderkey = -1i64;
        heap.scan(&s, |rid, row| {
            live.push(rid);
            max_orderkey = max_orderkey.max(row.get(crate::gen::COL_ORDERKEY));
        });
        ChurnDriver {
            plan,
            step: 0,
            base_rows: live.len() as u64,
            live,
            rows_touched: 0,
            next_orderkey: max_orderkey + 1,
        }
    }

    /// The plan being applied.
    pub fn plan(&self) -> &ChurnPlan {
        &self.plan
    }

    /// Batches applied so far.
    pub fn steps_applied(&self) -> u64 {
        self.step
    }

    /// Live rows right now.
    pub fn live_rows(&self) -> u64 {
        self.live.len() as u64
    }

    /// Fraction of the base table touched by mutations so far (rows
    /// touched over base rows; an update touches two).  Uncapped: churning
    /// longer than a full table's worth reports > 1.
    pub fn fraction_touched(&self) -> f64 {
        self.rows_touched as f64 / self.base_rows.max(1) as f64
    }

    /// Apply the next batch of the plan to `w`, charging all heap and
    /// index work to `session`, and emit one charge-free
    /// [`TraceEventKind::MutationBatch`] afterwards.  Bumps
    /// `w.config.mutation_epoch`.
    pub fn apply_batch(&mut self, w: &mut Workload, session: &Session) -> AppliedBatch {
        let ops = self.plan.batch(self.step);
        self.step += 1;
        let t0 = session.elapsed();
        let io0 = session.stats();
        let mut out = AppliedBatch::default();
        for op in ops {
            match op {
                ChurnOp::Insert { a, b, c, payload } => {
                    self.insert(w, session, a, b, c, payload, &mut out);
                    out.ops.0 += 1;
                }
                ChurnOp::Delete { ordinal } => {
                    if !self.live.is_empty() {
                        let at = (ordinal % self.live.len() as u64) as usize;
                        self.delete_at(w, session, at, &mut out);
                        out.ops.1 += 1;
                    }
                }
                ChurnOp::Update { ordinal, a, b } => {
                    if !self.live.is_empty() {
                        let at = (ordinal % self.live.len() as u64) as usize;
                        let old = self.delete_at(w, session, at, &mut out);
                        // Re-insert with the old row's non-predicate
                        // columns; the orderkey is preserved, so updates
                        // do not consume fresh keys.
                        let (oc, ok, op_) = (old.get(2), old.get(3), old.get(4));
                        self.insert_with_orderkey(w, session, a, b, oc, ok, op_, &mut out);
                        out.ops.2 += 1;
                    }
                }
            }
        }
        out.seconds = session.elapsed() - t0;
        out.io = session.stats().since(&io0);
        self.rows_touched += out.rows_applied;
        w.config.mutation_epoch += 1;
        session.trace_event(TraceEventKind::MutationBatch {
            rows: out.rows_applied,
            inserted: out.ops.0,
            deleted: out.ops.1,
            updated: out.ops.2,
        });
        out
    }

    /// Apply batches until `fraction_touched() >= target` (at least one
    /// batch if below target).  Returns the folded [`AppliedBatch`]es.
    pub fn apply_until_fraction(
        &mut self,
        w: &mut Workload,
        session: &Session,
        target: f64,
    ) -> Vec<AppliedBatch> {
        let mut batches = Vec::new();
        while self.fraction_touched() < target {
            batches.push(self.apply_batch(w, session));
        }
        batches
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_with_orderkey(
        &mut self,
        w: &mut Workload,
        session: &Session,
        a: i64,
        b: i64,
        c: i64,
        orderkey: i64,
        payload: i64,
        out: &mut AppliedBatch,
    ) {
        let row = Row::from_slice(&[a, b, c, orderkey, payload]);
        let rid = w
            .db
            .table_mut(w.table)
            .heap
            .append_charged(&row, session)
            .expect("schema-matched append");
        for idx in self.index_ids(w) {
            let key = w.db.index(idx).key_of(&row);
            w.db.index_def_mut(idx).tree.insert(key, rid, session);
        }
        self.live.push(rid);
        out.inserted.push((a, b));
        out.rows_applied += 1;
    }

    #[allow(clippy::too_many_arguments)]
    fn insert(
        &mut self,
        w: &mut Workload,
        session: &Session,
        a: i64,
        b: i64,
        c: i64,
        payload: i64,
        out: &mut AppliedBatch,
    ) {
        let orderkey = self.next_orderkey;
        self.next_orderkey += 1;
        self.insert_with_orderkey(w, session, a, b, c, orderkey, payload, out);
    }

    /// Tombstone the live row at position `at`, removing its five index
    /// entries first.  Returns the old row.
    fn delete_at(
        &mut self,
        w: &mut Workload,
        session: &Session,
        at: usize,
        out: &mut AppliedBatch,
    ) -> Row {
        let rid = self.live.swap_remove(at);
        let row = w
            .db
            .table(w.table)
            .heap
            .fetch(rid, session, AccessKind::Random)
            .expect("live rid fetches");
        for idx in self.index_ids(w) {
            let key = w.db.index(idx).key_of(&row);
            let removed = w.db.index_def_mut(idx).tree.delete(key, rid, session);
            debug_assert!(removed, "index entry for a live row exists");
        }
        w.db
            .table_mut(w.table)
            .heap
            .delete_charged(rid, session)
            .expect("live rid deletes");
        out.deleted.push((row.get(COL_A), row.get(COL_B)));
        out.rows_applied += 1;
        row
    }

    fn index_ids(&self, w: &Workload) -> [IndexId; 5] {
        let ix = &w.indexes;
        [ix.a, ix.b, ix.c, ix.ab, ix.ba]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TableBuilder, WorkloadConfig};
    use robustmap_storage::Key;

    fn small_workload(seed: u64) -> Workload {
        TableBuilder::build(WorkloadConfig { rows: 1 << 10, seed, ..Default::default() })
    }

    #[test]
    fn plan_is_a_pure_function_of_seed_and_step() {
        let cfg = ChurnConfig { domain: 1 << 10, ..ChurnConfig::for_workload(&small_workload(3)) };
        let p1 = ChurnPlan::new(cfg);
        let p2 = ChurnPlan::new(cfg);
        // Same (seed, step) -> same ops, regardless of call order.
        let b5 = p1.batch(5);
        assert_eq!(p1.batch(0), p2.batch(0));
        assert_eq!(p2.batch(5), b5);
        assert_eq!(p1.batch(5), b5);
        // Different steps and seeds differ.
        assert_ne!(p1.batch(0), p1.batch(1));
        let other = ChurnPlan::new(ChurnConfig { seed: cfg.seed ^ 1, ..cfg });
        assert_ne!(other.batch(0), p1.batch(0));
    }

    #[test]
    fn drift_shifts_inserted_values_upward() {
        let base = ChurnConfig {
            domain: 1 << 12,
            seed: 7,
            batch_ops: 4096,
            insert_pct: 100,
            delete_pct: 0,
            drift_hundredths: 0,
            drift_down: false,
        };
        let mean_a = |cfg: ChurnConfig| {
            let ops = ChurnPlan::new(cfg).batch(0);
            let mut sum = 0i64;
            for op in &ops {
                if let ChurnOp::Insert { a, .. } = op {
                    sum += a;
                }
            }
            sum as f64 / ops.len() as f64
        };
        let undrifted = mean_a(base);
        let drifted = mean_a(base.with_drift(50));
        let domain = base.domain as f64;
        assert!((undrifted - domain / 2.0).abs() < domain / 16.0, "no-drift mean {undrifted}");
        assert!((drifted - domain * 0.75).abs() < domain / 16.0, "drifted mean {drifted}");
        // And no drifted value lands in the lower half.
        for op in ChurnPlan::new(base.with_drift(50)).batch(1) {
            if let ChurnOp::Insert { a, .. } = op {
                assert!(a >= (base.domain / 2) as i64);
            }
        }
        // Downward drift mirrors it: mass concentrates in the lower half.
        let down = mean_a(base.with_drift_down(50));
        assert!((down - domain * 0.25).abs() < domain / 16.0, "down-drifted mean {down}");
        for op in ChurnPlan::new(base.with_drift_down(50)).batch(1) {
            if let ChurnOp::Insert { a, .. } = op {
                assert!(a < (base.domain / 2) as i64);
            }
        }
    }

    #[test]
    fn applied_batches_charge_the_session_and_bump_the_epoch() {
        let mut w = small_workload(11);
        let mut driver = ChurnDriver::new(&w, ChurnConfig::for_workload(&w));
        let s = Session::with_pool_pages(64);
        let batch = driver.apply_batch(&mut w, &s);
        assert!(batch.seconds > 0.0, "mutation work must land on the clock");
        assert!(batch.io.page_writes > 0, "mutations dirty pages");
        assert_eq!(batch.seconds.to_bits(), s.elapsed().to_bits());
        assert_eq!(w.config.mutation_epoch, 1);
        assert_eq!(batch.rows_applied, batch.inserted.len() as u64 + batch.deleted.len() as u64);
        driver.apply_batch(&mut w, &s);
        assert_eq!(w.config.mutation_epoch, 2);
    }

    #[test]
    fn indexes_stay_consistent_with_the_heap_under_churn() {
        let mut w = small_workload(13);
        let cfg = ChurnConfig { batch_ops: 512, ..ChurnConfig::for_workload(&w) }.with_drift(30);
        let mut driver = ChurnDriver::new(&w, cfg);
        let s = Session::with_pool_pages(64);
        for _ in 0..4 {
            driver.apply_batch(&mut w, &s);
        }
        // Every index: invariants hold, entry count equals live rows, and
        // every entry's key matches the row it points at.
        let heap = &w.db.table(w.table).heap;
        let check = Session::with_pool_pages(0);
        for idx in [w.indexes.a, w.indexes.b, w.indexes.c, w.indexes.ab, w.indexes.ba] {
            let def = w.db.index(idx);
            def.tree.check_invariants().unwrap();
            assert_eq!(def.tree.len(), heap.row_count(), "{}", def.name);
            for (key, rid) in def.tree.collect_all() {
                let row = heap.fetch(rid, &check, AccessKind::Random).unwrap();
                assert_eq!(key, def.key_of(&row), "{} at {rid}", def.name);
            }
        }
        assert_eq!(driver.live_rows(), heap.row_count());
    }

    #[test]
    fn replaying_a_plan_is_deterministic() {
        let build = || small_workload(17);
        let run = |mut w: Workload| {
            let cfg = ChurnConfig::for_workload(&w).with_drift(40);
            let mut driver = ChurnDriver::new(&w, cfg);
            let s = Session::with_pool_pages(64);
            for _ in 0..3 {
                driver.apply_batch(&mut w, &s);
            }
            let idx_entries: Vec<(Key, Rid)> = w.db.index(w.indexes.ab).tree.collect_all();
            (s.elapsed().to_bits(), s.stats(), w.db.table(w.table).heap.row_count(), idx_entries)
        };
        assert_eq!(run(build()), run(build()));
    }

    #[test]
    fn fraction_touched_tracks_applied_work() {
        let mut w = small_workload(19);
        let cfg = ChurnConfig { batch_ops: 128, ..ChurnConfig::for_workload(&w) };
        let mut driver = ChurnDriver::new(&w, cfg);
        let s = Session::with_pool_pages(64);
        assert_eq!(driver.fraction_touched(), 0.0);
        let batches = driver.apply_until_fraction(&mut w, &s, 0.5);
        assert!(!batches.is_empty());
        let touched: u64 = batches.iter().map(|b| b.rows_applied).sum();
        assert!((driver.fraction_touched() - touched as f64 / (1 << 10) as f64).abs() < 1e-12);
        assert!(driver.fraction_touched() >= 0.5);
        assert!(driver.fraction_touched() < 0.75, "overshoot bounded by one batch");
    }
}
