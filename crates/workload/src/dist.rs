//! Column value distributions.
//!
//! The paper names "skew (non-uniform value distributions and duplicate key
//! values)" among the strongest influences on run-time robustness (§3).
//! These generators produce the value sequences the experiments sweep over;
//! all are deterministic functions of a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic value generator for one column: `value(i)` is the value
/// of the column in row `i`.
pub trait Distribution {
    /// Value for row `i` (rows are generated `0..n`).
    fn value(&mut self, i: u64) -> i64;
}

/// A pseudo-random permutation of `0..n`: every value appears exactly once,
/// so range predicates have exact, analytically known selectivities.
///
/// Implemented as a 4-round Feistel network over `ceil(log2 n)` bits with
/// cycle-walking for non-power-of-two domains — invertible, stateless and
/// seeded.
#[derive(Debug, Clone)]
pub struct Permutation {
    n: u64,
    bits: u32,
    keys: [u64; 4],
}

impl Permutation {
    /// A permutation of `0..n` (n >= 1) determined by `seed`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n >= 1, "empty domain");
        let bits = 64 - (n - 1).leading_zeros().min(63);
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = [rng.gen(), rng.gen(), rng.gen(), rng.gen()];
        Permutation { n, bits: bits.max(2), keys }
    }

    fn feistel_round(&self, x: u64, key: u64) -> u64 {
        let half = self.bits / 2;
        let lo_bits = half;
        let hi_bits = self.bits - half;
        let lo_mask = (1u64 << lo_bits) - 1;
        let hi_mask = (1u64 << hi_bits) - 1;
        let lo = x & lo_mask;
        let hi = (x >> lo_bits) & hi_mask;
        // F-function: a cheap mix of the low half with the round key.
        let f = lo
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key)
            .rotate_left(31)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        let new_hi = (hi ^ f) & hi_mask;
        // Swap halves.
        (lo << hi_bits) | new_hi
    }

    fn encrypt(&self, mut x: u64) -> u64 {
        for &k in &self.keys {
            x = self.feistel_round(x, k);
        }
        x
    }

    /// The permuted value of `i` (`i < n`).
    pub fn apply(&self, i: u64) -> u64 {
        assert!(i < self.n, "index outside domain");
        // Cycle-walk until the image lands inside the domain.
        let mut x = i;
        loop {
            x = self.encrypt(x);
            if x < self.n {
                return x;
            }
        }
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }
}

impl Distribution for Permutation {
    fn value(&mut self, i: u64) -> i64 {
        self.apply(i % self.n) as i64
    }
}

/// Independent uniform values over `0..domain` (duplicates allowed).
#[derive(Debug)]
pub struct Uniform {
    domain: u64,
    rng: StdRng,
}

impl Uniform {
    /// Uniform values in `0..domain`.
    pub fn new(domain: u64, seed: u64) -> Self {
        assert!(domain >= 1);
        Uniform { domain, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Distribution for Uniform {
    fn value(&mut self, _i: u64) -> i64 {
        self.rng.gen_range(0..self.domain) as i64
    }
}

/// Zipf-distributed values over `0..domain` with parameter `theta`
/// (`theta = 0` is uniform; larger is more skewed).  Value `k` has
/// probability proportional to `1 / (k + 1)^theta`.
///
/// Sampling uses a precomputed CDF and binary search — exact, deterministic
/// and fast for the moderate domains the skew experiments use.
#[derive(Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl Zipf {
    /// A Zipf sampler over `0..domain` with skew `theta >= 0`.
    pub fn new(domain: u64, theta: f64, seed: u64) -> Self {
        assert!((1..=1 << 24).contains(&domain), "domain out of supported range");
        assert!(theta >= 0.0);
        let mut cdf = Vec::with_capacity(domain as usize);
        let mut acc = 0.0;
        for k in 0..domain {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Distribution for Zipf {
    fn value(&mut self, _i: u64) -> i64 {
        let u: f64 = self.rng.gen();
        self.cdf.partition_point(|&c| c < u) as i64
    }
}

/// A column correlated with another permutation column: with probability
/// `rho` the value equals the base permutation's value for the same row,
/// otherwise it is fresh-uniform.  Models the correlated predicate columns
/// that break independence assumptions.
///
/// Unlike the sequential-RNG distributions above, every draw is a **pure
/// function of `(seed, i)`** (hash-derived), not of generation call order:
/// a stateful RNG here would make the column depend on the order rows are
/// generated in, so a parallel bulk-load path — or any reordering — would
/// produce a different table from the same seed and break the workload
/// cache's bit-identical round-trip (`tests/cache_determinism.rs`).
#[derive(Debug, Clone)]
pub struct Correlated {
    base: Permutation,
    /// `rho` as a 2^-64 fixed-point threshold: a 64-bit hash draw below
    /// this is a correlated row.
    threshold: u128,
    seed: u64,
}

impl Correlated {
    /// Correlate with `base` at strength `rho` in `[0, 1]`.
    pub fn new(base: Permutation, rho: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rho));
        let threshold = (rho * (u64::MAX as f64 + 1.0)) as u128;
        Correlated { base, threshold, seed }
    }

    /// A splitmix64-style finalizer over `(seed, i, salt)` — the per-row
    /// hash draws replacing a sequential RNG.
    fn draw(&self, i: u64, salt: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(salt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Distribution for Correlated {
    fn value(&mut self, i: u64) -> i64 {
        if (self.draw(i, 1) as u128) < self.threshold {
            self.base.apply(i % self.base.domain()) as i64
        } else {
            (self.draw(i, 2) % self.base.domain()) as i64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_bijection() {
        for n in [1u64, 2, 7, 64, 1000, 4096] {
            let p = Permutation::new(n, 42);
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                let v = p.apply(i);
                assert!(v < n);
                assert!(!seen[v as usize], "duplicate at n={n}, i={i}");
                seen[v as usize] = true;
            }
        }
    }

    #[test]
    fn permutation_is_seed_dependent_and_deterministic() {
        let p1 = Permutation::new(1024, 1);
        let p2 = Permutation::new(1024, 1);
        let p3 = Permutation::new(1024, 2);
        let v1: Vec<u64> = (0..1024).map(|i| p1.apply(i)).collect();
        let v2: Vec<u64> = (0..1024).map(|i| p2.apply(i)).collect();
        let v3: Vec<u64> = (0..1024).map(|i| p3.apply(i)).collect();
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
    }

    #[test]
    fn permutation_scatters_neighbours() {
        // A permutation that keeps neighbours adjacent would defeat the
        // purpose (index fetches must scatter); check average displacement.
        let n = 1u64 << 14;
        let p = Permutation::new(n, 7);
        let mut total_gap = 0u64;
        for i in 0..1000 {
            let d = p.apply(i).abs_diff(p.apply(i + 1));
            total_gap += d;
        }
        assert!(total_gap / 1000 > n / 16, "mean gap {}", total_gap / 1000);
    }

    #[test]
    fn uniform_stays_in_domain() {
        let mut u = Uniform::new(100, 3);
        for i in 0..10_000 {
            let v = u.value(i);
            assert!((0..100).contains(&v));
        }
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let mut z = Zipf::new(16, 0.0, 5);
        let mut counts = [0u64; 16];
        for i in 0..32_000 {
            counts[z.value(i) as usize] += 1;
        }
        let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*hi < lo * 2, "counts {counts:?}");
    }

    #[test]
    fn zipf_skew_concentrates_mass() {
        let mut z = Zipf::new(1024, 1.2, 5);
        let mut head = 0u64;
        let n = 50_000;
        for i in 0..n {
            if z.value(i) < 10 {
                head += 1;
            }
        }
        // With theta=1.2 the first ten values carry well over a third of
        // the mass.
        assert!(head * 3 > n, "head {head} of {n}");
    }

    #[test]
    fn correlated_rho_one_equals_base() {
        let base = Permutation::new(512, 9);
        let mut c = Correlated::new(base.clone(), 1.0, 10);
        for i in 0..512 {
            assert_eq!(c.value(i), base.apply(i) as i64);
        }
    }

    #[test]
    fn correlated_rho_half_mixes() {
        let base = Permutation::new(512, 9);
        let mut c = Correlated::new(base.clone(), 0.5, 10);
        let matches = (0..512).filter(|&i| c.value(i) == base.apply(i) as i64).count();
        // ~50% direct matches plus ~0.2% accidental collisions.
        assert!((150..=360).contains(&matches), "matches {matches}");
    }

    #[test]
    fn correlated_rho_zero_never_copies_systematically() {
        let base = Permutation::new(4096, 9);
        let mut c = Correlated::new(base.clone(), 0.0, 10);
        let matches = (0..4096).filter(|&i| c.value(i) == base.apply(i) as i64).count();
        // Only accidental collisions (~1 expected over the domain).
        assert!(matches < 10, "matches {matches}");
    }

    #[test]
    fn correlated_is_a_pure_function_of_seed_and_row() {
        // Generation order must not matter: the same (seed, i) yields the
        // same value whether rows are drawn forward, backward, or
        // interleaved — the property the parallel bulk-load path and the
        // workload cache's determinism rely on.
        let base = Permutation::new(1024, 3);
        let mut forward = Correlated::new(base.clone(), 0.6, 7);
        let in_order: Vec<i64> = (0..1024).map(|i| forward.value(i)).collect();
        let mut backward = Correlated::new(base.clone(), 0.6, 7);
        let mut reversed: Vec<i64> = (0..1024).rev().map(|i| backward.value(i)).collect();
        reversed.reverse();
        assert_eq!(in_order, reversed);
        let mut strided = Correlated::new(base, 0.6, 7);
        for i in (0..1024).step_by(3).chain(1..5) {
            assert_eq!(strided.value(i), in_order[i as usize], "row {i}");
        }
    }
}
