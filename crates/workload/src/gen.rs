//! Workload assembly: the lineitem-like table, its indexes, and the
//! calibrators.
//!
//! The generated table mirrors the role lineitem plays in the paper:
//!
//! | column     | position | role                                            |
//! |------------|----------|-------------------------------------------------|
//! | `a`        | 0        | first predicate column (x-axis of the maps)     |
//! | `b`        | 1        | second predicate column (y-axis of the maps)    |
//! | `c`        | 2        | extra output column for covering-join plans     |
//! | `orderkey` | 3        | clustering key of the main storage structure    |
//! | `payload`  | 4        | padding (row width ≈ a slim lineitem)           |
//!
//! The heap is ordered by `orderkey` — "a clustered index organized on an
//! entirely unrelated column" (§3.3) — so scans of it are the paper's
//! no-index table scan.  Five indexes cover all thirteen plans measured
//! across the paper's three systems: `a`, `b`, `c`, `(a,b)`, `(b,a)`.

use robustmap_storage::btree::Entry;
use robustmap_storage::{BTree, ColumnType, Database, IndexId, Key, Rid, Row, Schema, TableId};

use crate::calib::Calibrator;
use crate::dist::{Correlated, Distribution, Permutation, Uniform, Zipf};

/// Position of predicate column `a`.
pub const COL_A: usize = 0;
/// Position of predicate column `b`.
pub const COL_B: usize = 1;
/// Position of the covering-join output column `c`.
pub const COL_C: usize = 2;
/// Position of the clustering key.
pub const COL_ORDERKEY: usize = 3;
/// Position of the padding column.
pub const COL_PAYLOAD: usize = 4;

/// How to generate the two predicate columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateDistribution {
    /// Pseudo-random permutations: exact selectivities (default, and what
    /// the headline figures use).
    Permutation,
    /// Uniform with duplicates over a domain of `n / 16` values.
    Uniform,
    /// Zipf over 4096 distinct values with the given skew in hundredths
    /// (e.g. `110` = theta 1.10) — kept integral so configs stay `Eq`.
    ZipfHundredths(u32),
    /// Correlated predicate columns: `a` is a permutation and `b` copies
    /// `a`'s value with probability `rho` (in hundredths, e.g. `75` = 0.75),
    /// falling back to fresh-uniform otherwise — the independence-assumption
    /// failure the `ext_correlated` experiment sweeps.  Kept integral so
    /// configs stay `Eq`.
    CorrelatedHundredths(u32),
}

/// Configuration for [`TableBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Row count (the paper used 60M; figures here default to 2^20 and
    /// record the landmark positions as fractions of the table).
    pub rows: u64,
    /// Master seed; all generators derive from it.
    pub seed: u64,
    /// Distribution of predicate columns `a` and `b`.
    pub predicate_dist: PredicateDistribution,
    /// Mutation epoch: 0 for a freshly generated table, bumped by the churn
    /// driver after every applied batch.  Folded into every content-addressed
    /// cache key (`wl-*`, `wl-jstats-*`), so an artifact cached for one
    /// epoch can never be served for a table whose rows have since changed.
    pub mutation_epoch: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            rows: 1 << 20,
            seed: 0xC1D2_2009,
            predicate_dist: PredicateDistribution::Permutation,
            mutation_epoch: 0,
        }
    }
}

impl WorkloadConfig {
    /// A small configuration for tests (2^12 rows).
    pub fn small() -> Self {
        WorkloadConfig { rows: 1 << 12, ..Default::default() }
    }

    /// The default configuration scaled to `rows`.
    pub fn with_rows(rows: u64) -> Self {
        WorkloadConfig { rows, ..Default::default() }
    }
}

/// The five indexes the paper's thirteen plans use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadIndexes {
    /// Single-column non-clustered index on `a`.
    pub a: IndexId,
    /// Single-column non-clustered index on `b`.
    pub b: IndexId,
    /// Single-column non-clustered index on `c`.
    pub c: IndexId,
    /// Two-column index on `(a, b)`.
    pub ab: IndexId,
    /// Two-column index on `(b, a)`.
    pub ba: IndexId,
}

/// A fully built workload: database, table, indexes, calibrators.
pub struct Workload {
    /// The database (read-only from here on).
    pub db: Database,
    /// The lineitem-like table.
    pub table: TableId,
    /// The indexes.
    pub indexes: WorkloadIndexes,
    /// Calibrator for predicate column `a`.
    pub cal_a: Calibrator,
    /// Calibrator for predicate column `b`.
    pub cal_b: Calibrator,
    /// The configuration that produced this workload.
    pub config: WorkloadConfig,
}

impl Workload {
    /// Rows in the table.
    pub fn rows(&self) -> u64 {
        self.config.rows
    }

    /// Heap pages of the table (the table scan's page count).
    pub fn heap_pages(&self) -> u32 {
        self.db.table(self.table).heap.page_count()
    }

    /// The leading key column of an index, straight from the catalog.
    ///
    /// Cost estimators must not hard-code which column an index id leads
    /// on (index ids are allocation-ordered and reordering index creation
    /// would silently mis-cost every index plan); this is the metadata
    /// they should consult instead.
    pub fn leading_column(&self, index: IndexId) -> usize {
        self.db.index(index).key_columns[0]
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("rows", &self.config.rows)
            .field("heap_pages", &self.heap_pages())
            .field("seed", &self.config.seed)
            .finish()
    }
}

/// The fill factor freshly built indexes are bulk-loaded with (the
/// customary default).
pub const INDEX_FILL: f64 = 0.9;

/// The schema of the lineitem-like table (shared by the generator and the
/// workload cache's load path).
pub fn lineitem_schema() -> Schema {
    Schema::new(vec![
        ("a", ColumnType::Int),
        ("b", ColumnType::Int),
        ("c", ColumnType::Int),
        ("orderkey", ColumnType::Int),
        ("payload", ColumnType::Money),
    ])
}

/// The five index definitions, in catalog order: `(name, key columns)`.
pub const INDEX_DEFS: [(&str, &[usize]); 5] = [
    ("idx_a", &[COL_A]),
    ("idx_b", &[COL_B]),
    ("idx_c", &[COL_C]),
    ("idx_ab", &[COL_A, COL_B]),
    ("idx_ba", &[COL_B, COL_A]),
];

/// Builds [`Workload`]s from [`WorkloadConfig`]s.
pub struct TableBuilder;

impl TableBuilder {
    /// Generate the table, build all five indexes, and calibrate.
    ///
    /// Always generates from scratch.  The five index bulk-loads and the
    /// two calibrator sorts are independent of each other, so they run on
    /// worker threads; the result is bit-identical to a sequential build
    /// (each sorts its own entry list with the same algorithm).  Callers
    /// that rebuild the same configuration repeatedly should prefer
    /// [`TableBuilder::build_cached`].
    pub fn build(config: WorkloadConfig) -> Workload {
        let n = config.rows;
        assert!(n >= 4, "workload too small");
        let mut db = Database::new();
        let table = db.create_table("lineitem", lineitem_schema());

        let (mut dist_a, mut dist_b) = predicate_dists(&config);
        let mut dist_c = Permutation::new(n, config.seed.wrapping_add(3));
        let mut payload = Uniform::new(1 << 20, config.seed.wrapping_add(4));

        let mut vals_a = Vec::with_capacity(n as usize);
        let mut vals_b = Vec::with_capacity(n as usize);
        let mut vals_c = Vec::with_capacity(n as usize);
        let mut rids: Vec<Rid> = Vec::with_capacity(n as usize);
        for i in 0..n {
            let a = dist_a.value(i);
            let b = dist_b.value(i);
            let c = dist_c.value(i);
            vals_a.push(a);
            vals_b.push(b);
            vals_c.push(c);
            let row = Row::from_slice(&[a, b, c, i as i64, payload.value(i)]);
            rids.push(db.insert_row(table, &row).expect("generated row must fit schema"));
        }

        // File ids in the order `create_index` would have allocated them,
        // so a parallel build is catalog-identical to a sequential one.
        let files: Vec<_> = INDEX_DEFS.iter().map(|_| db.alloc_file()).collect();
        // Key extractors per index, in INDEX_DEFS order.
        let key_of: [&(dyn Fn(usize) -> Key + Sync); 5] = [
            &|i| Key::single(vals_a[i]),
            &|i| Key::single(vals_b[i]),
            &|i| Key::single(vals_c[i]),
            &|i| Key::pair(vals_a[i], vals_b[i]),
            &|i| Key::pair(vals_b[i], vals_a[i]),
        ];
        let mut trees: Vec<Option<BTree>> = (0..INDEX_DEFS.len()).map(|_| None).collect();
        let mut cal_a = None;
        let mut cal_b = None;
        std::thread::scope(|scope| {
            for (slot, out) in trees.iter_mut().enumerate() {
                let key_of = key_of[slot];
                let file = files[slot];
                let arity = INDEX_DEFS[slot].1.len();
                let rids = &rids;
                scope.spawn(move || {
                    let mut entries: Vec<Entry> =
                        rids.iter().enumerate().map(|(i, &rid)| (key_of(i), rid)).collect();
                    entries.sort_unstable();
                    *out = Some(BTree::bulk_load(file, arity, &entries, INDEX_FILL));
                });
            }
            let (va, vb) = (&vals_a, &vals_b);
            let ca = &mut cal_a;
            let cb = &mut cal_b;
            scope.spawn(move || *ca = Some(Calibrator::new(va.clone())));
            scope.spawn(move || *cb = Some(Calibrator::new(vb.clone())));
        });

        let mut ids = Vec::with_capacity(INDEX_DEFS.len());
        for ((name, cols), tree) in INDEX_DEFS.iter().zip(trees) {
            ids.push(
                db.attach_index(name, table, cols, tree.expect("worker finished"))
                    .expect("valid columns"),
            );
        }
        let indexes =
            WorkloadIndexes { a: ids[0], b: ids[1], c: ids[2], ab: ids[3], ba: ids[4] };

        Workload {
            db,
            table,
            indexes,
            cal_a: cal_a.expect("worker finished"),
            cal_b: cal_b.expect("worker finished"),
            config,
        }
    }

    /// [`TableBuilder::build`] behind the content-addressed workload cache:
    /// a hit deserializes the workload from `target/workload-cache/`, a
    /// miss builds fresh and stores the result for every later binary and
    /// test invocation.  See [`crate::cache`] for the location and
    /// environment overrides.
    pub fn build_cached(config: WorkloadConfig) -> Workload {
        if let Some(w) = crate::cache::load(&config) {
            return w;
        }
        let w = Self::build(config);
        crate::cache::store(&w);
        w
    }
}

/// The generators for predicate columns `a` and `b`.  Most distributions
/// draw the two columns independently (seeds `seed+1` and `seed+2`); the
/// correlated family derives column `b` from column `a`'s permutation.
fn predicate_dists(config: &WorkloadConfig) -> (Box<dyn Distribution>, Box<dyn Distribution>) {
    let (sa, sb) = (config.seed.wrapping_add(1), config.seed.wrapping_add(2));
    match config.predicate_dist {
        PredicateDistribution::Permutation => (
            Box::new(Permutation::new(config.rows, sa)),
            Box::new(Permutation::new(config.rows, sb)),
        ),
        PredicateDistribution::Uniform => {
            let domain = (config.rows / 16).max(16);
            (Box::new(Uniform::new(domain, sa)), Box::new(Uniform::new(domain, sb)))
        }
        PredicateDistribution::ZipfHundredths(h) => (
            Box::new(Zipf::new(4096, h as f64 / 100.0, sa)),
            Box::new(Zipf::new(4096, h as f64 / 100.0, sb)),
        ),
        PredicateDistribution::CorrelatedHundredths(rho) => {
            let base = Permutation::new(config.rows, sa);
            let correlated = Correlated::new(base.clone(), rho as f64 / 100.0, sb);
            (Box::new(base), Box::new(correlated))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustmap_storage::Session;

    #[test]
    fn build_small_workload() {
        let w = TableBuilder::build(WorkloadConfig::small());
        assert_eq!(w.rows(), 1 << 12);
        assert_eq!(w.db.index_count(), 5);
        assert!(w.heap_pages() > 10);
        // Every index holds exactly one entry per row.
        for idx in [w.indexes.a, w.indexes.b, w.indexes.c, w.indexes.ab, w.indexes.ba] {
            assert_eq!(w.db.index(idx).tree.len(), 1 << 12);
            w.db.index(idx).tree.check_invariants().unwrap();
        }
    }

    #[test]
    fn leading_columns_come_from_the_catalog_for_all_five_indexes() {
        let w = TableBuilder::build(WorkloadConfig::small());
        assert_eq!(w.leading_column(w.indexes.a), COL_A);
        assert_eq!(w.leading_column(w.indexes.b), COL_B);
        assert_eq!(w.leading_column(w.indexes.c), COL_C);
        assert_eq!(w.leading_column(w.indexes.ab), COL_A);
        assert_eq!(w.leading_column(w.indexes.ba), COL_B);
        // The accessor reads the catalog, not the id: it agrees with the
        // index definitions whatever order allocation happened in.
        for (id, def) in w.db.indexes_on(w.table) {
            assert_eq!(w.leading_column(id), def.key_columns[0], "{}", def.name);
        }
    }

    #[test]
    fn permutation_workload_has_exact_selectivities() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let n = w.rows();
        for exp in [0u32, 1, 4, 8] {
            let sel = 1.0 / (1u64 << exp) as f64;
            let (_, count_a) = w.cal_a.threshold_with_count(sel);
            let (_, count_b) = w.cal_b.threshold_with_count(sel);
            assert_eq!(count_a, n >> exp);
            assert_eq!(count_b, n >> exp);
        }
    }

    #[test]
    fn predicate_columns_are_independent_permutations() {
        let w = TableBuilder::build(WorkloadConfig::small());
        let s = Session::with_pool_pages(0);
        let mut same = 0u64;
        w.db.table(w.table).heap.scan(&s, |_, row| {
            if row.get(COL_A) == row.get(COL_B) {
                same += 1;
            }
        });
        // Two independent permutations of 0..n collide ~once.
        assert!(same < 10, "a and b look correlated: {same} matches");
    }

    #[test]
    fn deterministic_across_builds() {
        let w1 = TableBuilder::build(WorkloadConfig::small());
        let w2 = TableBuilder::build(WorkloadConfig::small());
        let s = Session::with_pool_pages(0);
        let mut rows1 = Vec::new();
        w1.db.table(w1.table).heap.scan(&s, |_, r| rows1.push(r.values().to_vec()));
        let mut rows2 = Vec::new();
        w2.db.table(w2.table).heap.scan(&s, |_, r| rows2.push(r.values().to_vec()));
        assert_eq!(rows1, rows2);
    }

    #[test]
    fn different_seeds_differ() {
        // A permutation column always holds 0..n, so thresholds are
        // seed-independent — but the *placement* of values must differ.
        let mut cfg = WorkloadConfig::small();
        cfg.seed = 1;
        let w1 = TableBuilder::build(cfg.clone());
        cfg.seed = 2;
        let w2 = TableBuilder::build(cfg);
        let first_rows = |w: &Workload| {
            let s = Session::with_pool_pages(0);
            let mut vals = Vec::new();
            w.db.table(w.table).heap.scan(&s, |_, r| {
                if vals.len() < 32 {
                    vals.push(r.get(COL_A));
                }
            });
            vals
        };
        assert_ne!(first_rows(&w1), first_rows(&w2));
        // Thresholds agree (both are permutations of the same domain).
        assert_eq!(w1.cal_a.threshold(0.25), w2.cal_a.threshold(0.25));
    }

    #[test]
    fn correlated_workload_matches_rho_and_keeps_exact_a_selectivities() {
        for rho in [0u32, 50, 100] {
            let cfg = WorkloadConfig {
                rows: 1 << 12,
                seed: 7,
                predicate_dist: PredicateDistribution::CorrelatedHundredths(rho),
                mutation_epoch: 0,
            };
            let w = TableBuilder::build(cfg);
            // Column a stays an exact permutation: calibrated thresholds hit
            // their targets exactly.
            let (_, count) = w.cal_a.threshold_with_count(0.25);
            assert_eq!(count, 1 << 10, "rho {rho}");
            // The a == b match fraction tracks rho (fresh-uniform draws add
            // ~1/n accidental matches).
            let s = Session::with_pool_pages(0);
            let mut same = 0u64;
            w.db.table(w.table).heap.scan(&s, |_, row| {
                if row.get(COL_A) == row.get(COL_B) {
                    same += 1;
                }
            });
            let frac = same as f64 / w.rows() as f64;
            assert!(
                (frac - rho as f64 / 100.0).abs() < 0.03,
                "rho {rho}: match fraction {frac:.3}"
            );
        }
    }

    #[test]
    fn zipf_workload_builds_and_calibrates() {
        let cfg = WorkloadConfig {
            rows: 1 << 12,
            seed: 5,
            predicate_dist: PredicateDistribution::ZipfHundredths(110),
            mutation_epoch: 0,
        };
        let w = TableBuilder::build(cfg);
        let (t, count) = w.cal_a.threshold_with_count(0.5);
        assert!(count >= (1 << 11), "threshold {t} count {count}");
    }
}
