//! Equi-depth histograms: the catalog statistics real optimizers estimate
//! cardinalities from.
//!
//! The paper's opening diagnosis — "errors in cardinality estimation" as
//! the usual source of unexpected run-time conditions — has a concrete
//! mechanism: selectivities are estimated from coarse histograms, not from
//! the data.  This module provides the classic equi-depth histogram so the
//! optimizer experiments can derive their estimates the way a real system
//! would, with the error controlled by bucket count (and staleness
//! simulated by building the histogram from a sample).

/// An equi-depth histogram over one column: `buckets` boundaries chosen so
/// each bucket holds (approximately) the same number of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    /// Upper bound (inclusive) of each bucket, ascending.
    upper_bounds: Vec<i64>,
    /// Total rows represented.
    rows: u64,
    /// Minimum value seen.
    min: i64,
}

impl EquiDepthHistogram {
    /// Build from column values with the given bucket count.
    ///
    /// Bucket boundaries are found by recursive rank selection
    /// ([`slice::select_nth_unstable`] on the median boundary, then on each
    /// half), which is O(n log buckets) — a full sort of the column would
    /// be O(n log n), a noticeable cost when catalog statistics are built
    /// over 2^20-row tables.  The boundaries are the values the sorted
    /// column holds at the boundary ranks, so the result is identical to
    /// the sort-based build (`selection_build_matches_the_full_sort_build`
    /// pins this).
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn build(mut values: Vec<i64>, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        if values.is_empty() {
            return EquiDepthHistogram { upper_bounds: vec![0], rows: 0, min: 0 };
        }
        let n = values.len();
        let per_bucket = n.div_ceil(buckets).max(1);
        // Boundary ranks in the sorted order: every per_bucket-th value,
        // plus the maximum — strictly ascending by construction.
        let mut ranks: Vec<usize> =
            (1..).map(|k| k * per_bucket - 1).take_while(|&r| r + 1 < n).collect();
        ranks.push(n - 1);
        let min = *values.iter().min().expect("nonempty");
        let mut upper_bounds = vec![0i64; ranks.len()];
        multiselect(&mut values, 0, &ranks, &mut upper_bounds);
        EquiDepthHistogram { upper_bounds, rows: n as u64, min }
    }

    /// Build from every `step`-th value — a stale/sampled histogram, the
    /// realistic source of larger estimation errors.
    pub fn build_sampled(values: &[i64], buckets: usize, step: usize) -> Self {
        let sample: Vec<i64> = values.iter().step_by(step.max(1)).copied().collect();
        let mut h = Self::build(sample, buckets);
        h.rows = values.len() as u64; // represent the full table
        h
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.upper_bounds.len()
    }

    /// Rows represented.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Estimated selectivity of `value <= t`, with linear interpolation
    /// inside the boundary bucket (the textbook formula).
    pub fn estimate_at_most(&self, t: i64) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        if t < self.min {
            return 0.0;
        }
        // Buckets whose (inclusive) upper bound is <= t are fully covered —
        // with heavy duplication several buckets can share one bound.
        let b = self.upper_bounds.partition_point(|&ub| ub <= t);
        if b >= self.upper_bounds.len() {
            return 1.0;
        }
        let bucket_fraction = 1.0 / self.upper_bounds.len() as f64;
        let full_buckets = b as f64 * bucket_fraction;
        // Interpolate within bucket `b` (t lies strictly below its bound).
        let lo = if b == 0 { self.min } else { self.upper_bounds[b - 1] };
        let hi = self.upper_bounds[b];
        let within = if hi > lo { (t - lo) as f64 / (hi - lo) as f64 } else { 0.0 };
        (full_buckets + within.clamp(0.0, 1.0) * bucket_fraction).clamp(0.0, 1.0)
    }

    /// Estimated row count for `value <= t`.
    pub fn estimate_rows_at_most(&self, t: i64) -> f64 {
        self.estimate_at_most(t) * self.rows as f64
    }

    /// The histogram's internals, for the statistics cache's store path.
    pub(crate) fn parts(&self) -> (&[i64], u64, i64) {
        (&self.upper_bounds, self.rows, self.min)
    }

    /// Reassemble from [`EquiDepthHistogram::parts`] (the statistics
    /// cache's load path).
    pub(crate) fn from_parts(upper_bounds: Vec<i64>, rows: u64, min: i64) -> Self {
        EquiDepthHistogram { upper_bounds, rows, min }
    }
}

/// Write the values at the ascending absolute `ranks` of the sorted order
/// of `values` (whose first element has absolute rank `base`) into `out`,
/// by selecting the median rank and recursing into the partitions
/// `select_nth_unstable` leaves behind.
fn multiselect(values: &mut [i64], base: usize, ranks: &[usize], out: &mut [i64]) {
    if ranks.is_empty() {
        return;
    }
    let mid = ranks.len() / 2;
    let k = ranks[mid] - base;
    let (lo, v, hi) = values.select_nth_unstable(k);
    out[mid] = *v;
    multiselect(lo, base, &ranks[..mid], &mut out[..mid]);
    multiselect(hi, base + k + 1, &ranks[mid + 1..], &mut out[mid + 1..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::Calibrator;
    use crate::dist::{Distribution, Permutation, Zipf};

    #[test]
    fn uniform_histogram_is_accurate() {
        let values: Vec<i64> = (0..10_000).collect();
        let h = EquiDepthHistogram::build(values, 64);
        for t in [0i64, 100, 2_500, 5_000, 9_999] {
            let est = h.estimate_at_most(t);
            let truth = (t + 1) as f64 / 10_000.0;
            assert!(
                (est - truth).abs() < 0.02,
                "t={t}: est {est:.4} vs truth {truth:.4}"
            );
        }
    }

    #[test]
    fn fewer_buckets_mean_larger_errors_on_skew() {
        let mut z = Zipf::new(1024, 1.2, 7);
        let values: Vec<i64> = (0..20_000).map(|i| z.value(i)).collect();
        let cal = Calibrator::new(values.clone());
        let err_of = |buckets: usize| {
            let h = EquiDepthHistogram::build(values.clone(), buckets);
            let mut worst = 0.0f64;
            for t in [0i64, 1, 4, 16, 64, 256, 1023] {
                let est = h.estimate_at_most(t);
                let truth = cal.selectivity(t);
                worst = worst.max((est - truth).abs());
            }
            worst
        };
        let coarse = err_of(4);
        let fine = err_of(256);
        assert!(
            fine <= coarse,
            "finer histogram should not be worse: fine {fine:.4} vs coarse {coarse:.4}"
        );
        assert!(fine < 0.05, "fine histogram error {fine:.4}");
    }

    #[test]
    fn permutation_histogram_tracks_the_calibrator() {
        let n = 1u64 << 14;
        let p = Permutation::new(n, 3);
        let values: Vec<i64> = (0..n).map(|i| p.apply(i) as i64).collect();
        let cal = Calibrator::new(values.clone());
        let h = EquiDepthHistogram::build(values, 128);
        for sel in [0.001, 0.01, 0.25, 0.9] {
            let t = cal.threshold(sel);
            let est = h.estimate_at_most(t);
            assert!((est - sel).abs() < 0.02, "sel {sel}: est {est:.4}");
        }
    }

    #[test]
    fn sampled_histogram_represents_full_rows() {
        let values: Vec<i64> = (0..10_000).collect();
        let h = EquiDepthHistogram::build_sampled(&values, 16, 100);
        assert_eq!(h.rows(), 10_000);
        let est = h.estimate_rows_at_most(5_000);
        assert!((est - 5_000.0).abs() < 1_000.0, "rows estimate {est}");
    }

    #[test]
    fn boundaries_and_edges() {
        let h = EquiDepthHistogram::build(vec![10, 20, 30, 40], 2);
        assert_eq!(h.estimate_at_most(9), 0.0);
        assert_eq!(h.estimate_at_most(40), 1.0);
        assert_eq!(h.estimate_at_most(1000), 1.0);
        let mid = h.estimate_at_most(20);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn selection_build_matches_the_full_sort_build() {
        // The selection-based build must reproduce the sort-based build
        // exactly — same boundaries, same estimates — for duplicates,
        // negatives, skew, and bucket counts beyond the value count.
        let mut z = Zipf::new(512, 1.1, 13);
        let cases: Vec<Vec<i64>> = vec![
            (0..10_000).collect(),
            (0..10_000).rev().collect(),
            vec![7; 1000],
            vec![-5, 3, -5, 3, 0, 100, -200],
            (0..30_000).map(|i| z.value(i)).collect(),
        ];
        for values in cases {
            for buckets in [1usize, 3, 7, 64, 1000] {
                let h = EquiDepthHistogram::build(values.clone(), buckets);
                // The sort-based reference, computed the pre-selection way.
                let mut sorted = values.clone();
                sorted.sort_unstable();
                let n = sorted.len();
                let per_bucket = n.div_ceil(buckets).max(1);
                let mut reference = Vec::new();
                let mut i = per_bucket;
                while i < n {
                    reference.push(sorted[i - 1]);
                    i += per_bucket;
                }
                reference.push(sorted[n - 1]);
                assert_eq!(h.upper_bounds, reference, "{buckets} buckets");
                assert_eq!(h.min, sorted[0]);
                assert_eq!(h.rows, n as u64);
                for &t in &[sorted[0] - 1, sorted[0], sorted[n / 2], sorted[n - 1], i64::MAX] {
                    let exact = sorted.partition_point(|&v| v <= t) as f64 / n as f64;
                    let est = h.estimate_at_most(t);
                    assert!(
                        (est - exact).abs() <= 1.5 / buckets.min(n) as f64 + 1e-12,
                        "{buckets} buckets, t={t}: est {est:.4} vs exact {exact:.4}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_single_value_columns() {
        let h = EquiDepthHistogram::build(vec![], 8);
        assert_eq!(h.estimate_at_most(5), 0.0);
        let h = EquiDepthHistogram::build(vec![7; 100], 8);
        assert_eq!(h.estimate_at_most(6), 0.0);
        assert_eq!(h.estimate_at_most(7), 1.0);
    }
}
