//! # robustmap-workload
//!
//! Synthetic workload generation for the robustness-map reproduction of
//! Graefe, Kuno & Wiener (CIDR 2009).
//!
//! The paper measures selections over TPC-H lineitem (~60M rows) while
//! sweeping predicate selectivities in factor-of-two steps from `2^-16` to
//! `1`.  We cannot ship TPC-H data, so this crate generates a
//! lineitem-like table whose predicate columns have *exactly controllable*
//! selectivities:
//!
//! * [`dist::Permutation`] columns hold a pseudo-random permutation of
//!   `0..n`, so `col <= t` matches exactly `t + 1` rows — the sweep hits
//!   every target selectivity precisely and deterministically;
//! * [`dist::Zipf`] and [`dist::Correlated`] columns support the skew and
//!   correlation experiments the paper lists as robustness factors (§3);
//! * [`calib::Calibrator`] maps any target selectivity to a predicate
//!   constant for *any* distribution by consulting the generated data —
//!   what the paper does by choosing predicate constants against TPC-H.
//!
//! [`TableBuilder`] assembles the database: the heap, the five indexes the
//! paper's thirteen plans need (`a`, `b`, `c`, `(a,b)`, `(b,a)`), and the
//! calibrators.
//!
//! [`stats::JointHistogram`] adds the multi-column catalog statistics a
//! correlation-aware optimizer estimates from — a sample-backed 2-D
//! equi-depth histogram over `(a, b)`, cached alongside the workloads.

pub mod cache;
pub mod calib;
pub mod churn;
pub mod dist;
pub mod gen;
pub mod histogram;
pub mod stats;
pub mod stats_maint;

pub use calib::Calibrator;
pub use churn::{AppliedBatch, ChurnConfig, ChurnDriver, ChurnOp, ChurnPlan};
pub use histogram::EquiDepthHistogram;
pub use dist::{Correlated, Distribution, Permutation, Uniform, Zipf};
pub use gen::{
    TableBuilder, Workload, WorkloadConfig, COL_A, COL_B, COL_C, COL_ORDERKEY, COL_PAYLOAD,
};
pub use stats::{JointHistogram, JointHistogramConfig};
pub use stats_maint::{MaintainedJoint, RebuildPolicy, Staleness};
