//! Multi-column (joint) statistics: the catalog artifact that retires the
//! independence assumption.
//!
//! The `ext_correlated` experiment showed the failure mode the paper opens
//! with, reproduced in our own optimizer: a chooser fed per-column
//! selectivities estimates the conjunction `a <= ta AND b <= tb` as
//! `sel_a * sel_b`, which under correlation is wrong by up to `rho / s` —
//! and the wrong cardinality feeds *every* cost formula.  A
//! [`JointHistogram`] is the classic fix: a 2-D equi-depth histogram over
//! `(a, b)`, built from a deterministic seeded row sample, answering
//! [`JointHistogram::estimate_joint_at_most`] directly from observed
//! co-occurrence instead of from a product of marginals.
//!
//! ## Shape
//!
//! The sample is partitioned into `a_buckets` equi-depth buckets by `a`;
//! each bucket carries a 1-D [`EquiDepthHistogram`] over the `b` values of
//! *its own rows* — a conditional distribution P(b | a-bucket).  A joint
//! estimate sums fully covered buckets (interpolating inside the boundary
//! bucket, exactly like the 1-D estimator) weighted by each bucket's
//! conditional `b` estimate.  Marginal histograms over the same sample are
//! kept alongside, so one build serves both the joint and the per-column
//! estimates (and the two agree within bucket resolution — property-tested
//! in `tests/prop_stats.rs`).
//!
//! ## Determinism and caching
//!
//! The row sample is a pure function of `(stats seed, workload seed, row
//! index)` — a splitmix-style hash draw per row, never a stateful RNG — so
//! builds are bit-identical across runs and machines.  Like workloads,
//! built statistics are content-addressed into the workload cache
//! directory ([`JointHistogram::build_cached`]): the file name hashes the
//! workload configuration and every statistics parameter, and the `wl-`
//! prefix keeps the files under the cache's LRU size budget.

use std::path::PathBuf;

use robustmap_storage::Session;

use crate::cache::{self, Reader, Writer, FNV_SEED};
use crate::gen::{Workload, WorkloadConfig, COL_A, COL_B};
use crate::histogram::EquiDepthHistogram;

/// Parameters of a [`JointHistogram`] build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JointHistogramConfig {
    /// Equi-depth buckets over `a` (the conditional partition and the
    /// marginal `a` histogram share this count).
    pub a_buckets: usize,
    /// Buckets of each per-`a`-bucket conditional `b` histogram (the
    /// marginal `b` histogram uses `a_buckets` like a 1-D catalog would).
    pub b_buckets: usize,
    /// Target sample size in rows; tables at most this large are read in
    /// full.
    pub sample_target: u64,
    /// Sampling seed (mixed with the workload's seed per draw).
    pub seed: u64,
}

impl Default for JointHistogramConfig {
    fn default() -> Self {
        JointHistogramConfig {
            a_buckets: 64,
            b_buckets: 16,
            sample_target: 1 << 16,
            seed: 0x57A7_5EED,
        }
    }
}

/// A sample-backed 2-D equi-depth histogram over the predicate columns
/// `(a, b)`, with marginals.
#[derive(Debug, Clone, PartialEq)]
pub struct JointHistogram {
    config: JointHistogramConfig,
    /// Rows represented (the full table, not the sample).
    rows: u64,
    /// Rows actually sampled.
    sample_rows: u64,
    /// Minimum sampled `a` value.
    min_a: i64,
    /// Upper bound (inclusive) of each `a` bucket, ascending.
    a_bounds: Vec<i64>,
    /// Sample rows in each `a` bucket (equi-depth up to the remainder).
    a_counts: Vec<u64>,
    /// Conditional `b` histogram of each `a` bucket.
    cond_b: Vec<EquiDepthHistogram>,
    /// Marginal histogram over `a` (same sample, same bucket count).
    hist_a: EquiDepthHistogram,
    /// Marginal histogram over `b`.
    hist_b: EquiDepthHistogram,
}

/// Variance of a Bernoulli sample mean at estimated rate `p` over `m`
/// draws (`p(1-p) / (m-1)`, the unbiased plug-in).  Zero for degenerate
/// samples (`m <= 1`), where the estimate carries no variance signal.
fn sample_mean_variance(p: f64, m: u64) -> f64 {
    if m <= 1 {
        return 0.0;
    }
    let p = p.clamp(0.0, 1.0);
    p * (1.0 - p) / (m - 1) as f64
}

/// A splitmix64-style finalizer: the per-row sampling draw (shared with
/// the churn generator, which needs the same pure-function-of-`(seed, i)`
/// shape).
pub(crate) fn draw(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl JointHistogram {
    /// Build from explicit `(a, b)` sample pairs representing a table of
    /// `rows` rows.  [`JointHistogram::from_workload`] is the usual entry;
    /// this one exists for tests and synthetic data.
    ///
    /// # Panics
    /// Panics if either bucket count in `config` is zero.
    pub fn build(mut pairs: Vec<(i64, i64)>, rows: u64, config: JointHistogramConfig) -> Self {
        assert!(config.a_buckets > 0 && config.b_buckets > 0, "need at least one bucket");
        let m = pairs.len();
        let hist_b = EquiDepthHistogram::build(pairs.iter().map(|p| p.1).collect(), config.a_buckets);
        if m == 0 {
            return JointHistogram {
                config,
                rows,
                sample_rows: 0,
                min_a: 0,
                a_bounds: vec![0],
                a_counts: vec![0],
                cond_b: vec![EquiDepthHistogram::build(vec![], config.b_buckets)],
                hist_a: EquiDepthHistogram::build(vec![], config.a_buckets),
                hist_b,
            };
        }
        // Equi-depth partition by `a`: the same chunking rule as the 1-D
        // build, so `a_bounds` coincide with the marginal's boundaries.
        pairs.sort_unstable();
        let per_bucket = m.div_ceil(config.a_buckets).max(1);
        let mut a_bounds = Vec::new();
        let mut a_counts = Vec::new();
        let mut cond_b = Vec::new();
        let mut at = 0usize;
        while at < m {
            let end = (at + per_bucket).min(m);
            a_bounds.push(pairs[end - 1].0);
            a_counts.push((end - at) as u64);
            cond_b.push(EquiDepthHistogram::build(
                pairs[at..end].iter().map(|p| p.1).collect(),
                config.b_buckets,
            ));
            at = end;
        }
        // The marginal `a` histogram is exactly the partition's boundaries
        // over the same sorted sample — assemble it from parts instead of
        // paying a second selection pass (`prop_stats.rs` pins the
        // equivalence against a directly built 1-D histogram).
        let hist_a = EquiDepthHistogram::from_parts(a_bounds.clone(), m as u64, pairs[0].0);
        JointHistogram {
            config,
            rows,
            sample_rows: m as u64,
            min_a: pairs[0].0,
            a_bounds,
            a_counts,
            cond_b,
            hist_a,
            hist_b,
        }
    }

    /// Build from a deterministic seeded sample of the workload's heap —
    /// the way a statistics job would gather it.
    pub fn from_workload(w: &Workload, config: &JointHistogramConfig) -> Self {
        let n = w.rows();
        let stride = (n / config.sample_target.max(1)).max(1);
        let seed = config.seed ^ w.config.seed.rotate_left(17);
        let s = Session::with_pool_pages(0);
        let mut pairs = Vec::with_capacity((n / stride) as usize + 1);
        let mut i = 0u64;
        w.db.table(w.table).heap.scan(&s, |_, row| {
            if stride == 1 || draw(seed, i).is_multiple_of(stride) {
                pairs.push((row.get(COL_A), row.get(COL_B)));
            }
            i += 1;
        });
        Self::build(pairs, n, *config)
    }

    /// [`JointHistogram::from_workload`] behind the workload cache: a hit
    /// deserializes the statistics bit-identically, a miss builds and
    /// stores them.  Same directory, budget and environment overrides as
    /// the workload cache itself.
    pub fn build_cached(w: &Workload, config: &JointHistogramConfig) -> Self {
        if let Some(h) = load(&w.config, config) {
            return h;
        }
        let h = Self::from_workload(w, config);
        store(&w.config, &h);
        h
    }

    /// Rows the statistics represent (the full table).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Rows actually sampled.
    pub fn sample_rows(&self) -> u64 {
        self.sample_rows
    }

    /// The build parameters.
    pub fn config(&self) -> &JointHistogramConfig {
        &self.config
    }

    /// The marginal histogram over `a`.
    pub fn marginal_a(&self) -> &EquiDepthHistogram {
        &self.hist_a
    }

    /// The marginal histogram over `b`.
    pub fn marginal_b(&self) -> &EquiDepthHistogram {
        &self.hist_b
    }

    /// Selectivity resolution of the `a` axis: one marginal bucket.
    pub fn resolution_a(&self) -> f64 {
        1.0 / self.hist_a.bucket_count() as f64
    }

    /// Selectivity resolution of the `b` axis: one marginal bucket.
    pub fn resolution_b(&self) -> f64 {
        1.0 / self.hist_b.bucket_count() as f64
    }

    /// Observed sampling variance of the marginal-`a` selectivity estimate
    /// at `ta`: the variance of the sample mean of the Bernoulli indicator
    /// `1[a <= ta]`, i.e. `p(1-p) / (m-1)` for a sample of `m` rows.
    ///
    /// This is the *statistical* uncertainty of the estimate — how much it
    /// would move under a different random sample — as opposed to
    /// [`JointHistogram::resolution_a`], the *representational* limit of
    /// the bucket grid.  An uncertainty region should cover both: the
    /// variance term dominates when the sample is small relative to the
    /// bucket count, the resolution term when the sample is plentiful.
    pub fn sel_variance_a(&self, ta: i64) -> f64 {
        sample_mean_variance(self.hist_a.estimate_at_most(ta), self.sample_rows)
    }

    /// Observed sampling variance of the marginal-`b` selectivity estimate
    /// at `tb`; see [`JointHistogram::sel_variance_a`].
    pub fn sel_variance_b(&self, tb: i64) -> f64 {
        sample_mean_variance(self.hist_b.estimate_at_most(tb), self.sample_rows)
    }

    /// Estimated selectivity of the conjunction `a <= ta AND b <= tb`,
    /// from observed co-occurrence — no independence assumption.
    pub fn estimate_joint_at_most(&self, ta: i64, tb: i64) -> f64 {
        if self.sample_rows == 0 || ta < self.min_a {
            return 0.0;
        }
        let m = self.sample_rows as f64;
        // `a` buckets fully below ta (duplicated bounds make this a
        // partition point, as in the 1-D estimator).
        let k = self.a_bounds.partition_point(|&ub| ub <= ta);
        let mut p = 0.0;
        for i in 0..k {
            p += self.a_counts[i] as f64 / m * self.cond_b[i].estimate_at_most(tb);
        }
        if k < self.a_bounds.len() {
            let lo = if k == 0 { self.min_a } else { self.a_bounds[k - 1] };
            let hi = self.a_bounds[k];
            let within =
                if hi > lo { (ta - lo) as f64 / (hi - lo) as f64 } else { 0.0 };
            p += within.clamp(0.0, 1.0) * self.a_counts[k] as f64 / m
                * self.cond_b[k].estimate_at_most(tb);
        }
        p.clamp(0.0, 1.0)
    }
}

// ------------------------------------------------------------- the cache

const STATS_MAGIC: &[u8; 8] = b"RMJS\x01\0\0\0";
/// Bump on any change to the sampling rule, the partition rule, or the
/// serialized layout — the version is part of the content hash, so a bump
/// makes every old statistics file miss and rebuild.
const STATS_VERSION: u64 = 1;

/// The file a `(workload, statistics)` configuration pair is cached at, or
/// `None` when caching is disabled.  The `wl-` prefix keeps statistics
/// files inside the workload cache's LRU size budget.
pub fn stats_cache_path(wl: &WorkloadConfig, cfg: &JointHistogramConfig) -> Option<PathBuf> {
    let mut h = FNV_SEED;
    for word in [
        STATS_VERSION,
        cache::config_hash(wl),
        cfg.a_buckets as u64,
        cfg.b_buckets as u64,
        cfg.sample_target,
        cfg.seed,
    ] {
        h = cache::fnv1a(h, &word.to_le_bytes());
    }
    cache::cache_dir().map(|d| d.join(format!("wl-jstats-{}-{h:016x}.bin", wl.rows)))
}

fn write_hist(out: &mut Writer, h: &EquiDepthHistogram) {
    let (bounds, rows, min) = h.parts();
    out.u64(bounds.len() as u64);
    for &b in bounds {
        out.i64(b);
    }
    out.u64(rows);
    out.i64(min);
}

fn read_hist(r: &mut Reader) -> Option<EquiDepthHistogram> {
    let len = usize::try_from(r.u64()?).ok()?;
    let mut bounds = Vec::with_capacity(len);
    for _ in 0..len {
        bounds.push(r.i64()?);
    }
    let rows = r.u64()?;
    let min = r.i64()?;
    Some(EquiDepthHistogram::from_parts(bounds, rows, min))
}

/// Serialize built statistics into the cache (no-op when caching is
/// disabled; best-effort like the workload cache).
pub fn store(wl: &WorkloadConfig, h: &JointHistogram) {
    let Some(path) = stats_cache_path(wl, &h.config) else { return };
    let mut out = Writer::new();
    out.bytes(STATS_MAGIC);
    for word in [
        h.config.a_buckets as u64,
        h.config.b_buckets as u64,
        h.config.sample_target,
        h.config.seed,
        h.rows,
        h.sample_rows,
    ] {
        out.u64(word);
    }
    out.i64(h.min_a);
    out.u64(h.a_bounds.len() as u64);
    for (&bound, &count) in h.a_bounds.iter().zip(&h.a_counts) {
        out.i64(bound);
        out.u64(count);
    }
    for cond in &h.cond_b {
        write_hist(&mut out, cond);
    }
    write_hist(&mut out, &h.hist_a);
    write_hist(&mut out, &h.hist_b);
    cache::write_cache_file(&path, out.buf);
}

/// Deserialize cached statistics, or `None` on a miss (no file, caching
/// disabled, or a file that fails validation).
pub fn load(wl: &WorkloadConfig, cfg: &JointHistogramConfig) -> Option<JointHistogram> {
    let path = stats_cache_path(wl, cfg)?;
    let payload = cache::read_cache_file(&path)?;
    let mut r = Reader { buf: &payload, at: 0 };
    if r.take(STATS_MAGIC.len())? != STATS_MAGIC {
        return None;
    }
    if [r.u64()?, r.u64()?, r.u64()?, r.u64()?]
        != [cfg.a_buckets as u64, cfg.b_buckets as u64, cfg.sample_target, cfg.seed]
    {
        return None;
    }
    let rows = r.u64()?;
    let sample_rows = r.u64()?;
    let min_a = r.i64()?;
    let buckets = usize::try_from(r.u64()?).ok()?;
    let mut a_bounds = Vec::with_capacity(buckets);
    let mut a_counts = Vec::with_capacity(buckets);
    for _ in 0..buckets {
        a_bounds.push(r.i64()?);
        a_counts.push(r.u64()?);
    }
    if a_counts.iter().sum::<u64>() != sample_rows {
        return None;
    }
    let mut cond_b = Vec::with_capacity(buckets);
    for _ in 0..buckets {
        cond_b.push(read_hist(&mut r)?);
    }
    let hist_a = read_hist(&mut r)?;
    let hist_b = read_hist(&mut r)?;
    if r.at != r.buf.len() {
        return None; // trailing garbage
    }
    Some(JointHistogram {
        config: *cfg,
        rows,
        sample_rows,
        min_a,
        a_bounds,
        a_counts,
        cond_b,
        hist_a,
        hist_b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Permutation};
    use crate::gen::{PredicateDistribution, TableBuilder};

    fn correlated_pairs(n: u64, rho_pct: u64, seed: u64) -> Vec<(i64, i64)> {
        let base = Permutation::new(n, seed);
        let mut other = Permutation::new(n, seed ^ 0xDEAD);
        (0..n)
            .map(|i| {
                let a = base.apply(i) as i64;
                let b = if draw(seed, i) % 100 < rho_pct { a } else { other.value(i) };
                (a, b)
            })
            .collect()
    }

    #[test]
    fn independent_columns_estimate_the_product() {
        let pairs = correlated_pairs(1 << 14, 0, 3);
        let n = pairs.len() as i64;
        let h = JointHistogram::build(pairs, 1 << 14, JointHistogramConfig::default());
        for sel in [0.05f64, 0.25, 0.5, 1.0] {
            let t = (sel * n as f64) as i64 - 1;
            let est = h.estimate_joint_at_most(t, t);
            assert!(
                (est - sel * sel).abs() < 0.04,
                "sel {sel}: joint {est:.4} vs product {:.4}",
                sel * sel
            );
        }
    }

    #[test]
    fn fully_correlated_columns_estimate_the_diagonal() {
        // b == a everywhere: P(a <= t AND b <= t) = P(a <= t) = sel, which
        // the independence assumption would square.
        let pairs = correlated_pairs(1 << 14, 100, 7);
        let n = pairs.len() as i64;
        let h = JointHistogram::build(pairs, 1 << 14, JointHistogramConfig::default());
        for sel in [0.1f64, 0.25, 0.5, 0.9] {
            let t = (sel * n as f64) as i64 - 1;
            let est = h.estimate_joint_at_most(t, t);
            assert!(
                (est - sel).abs() < 0.05,
                "sel {sel}: joint {est:.4} should track the marginal, not {:.4}",
                sel * sel
            );
        }
    }

    #[test]
    fn estimates_are_probabilities_and_monotone() {
        let pairs = correlated_pairs(1 << 12, 60, 11);
        let n = 1i64 << 12;
        let h = JointHistogram::build(pairs, 1 << 12, JointHistogramConfig::default());
        let mut last = 0.0f64;
        for t in (0..=n).step_by(64) {
            let est = h.estimate_joint_at_most(t, n);
            assert!((0.0..=1.0).contains(&est));
            assert!(est >= last - 1e-12, "joint estimate dipped at t={t}");
            last = est;
        }
        assert_eq!(h.estimate_joint_at_most(i64::MIN, n), 0.0);
        assert!(h.estimate_joint_at_most(n, n) > 0.99);
    }

    #[test]
    fn sel_variance_tracks_binomial_uncertainty_and_shrinks_with_the_sample() {
        let small = JointHistogram::build(
            correlated_pairs(1 << 8, 0, 5),
            1 << 8,
            JointHistogramConfig::default(),
        );
        let large = JointHistogram::build(
            correlated_pairs(1 << 14, 0, 5),
            1 << 14,
            JointHistogramConfig::default(),
        );
        // At the midpoint (p ~ 0.5) the variance is ~ 0.25 / (m - 1):
        // the small sample's estimate is far noisier than the large one's.
        let t_small = (1i64 << 7) - 1;
        let t_large = (1i64 << 13) - 1;
        let v_small = small.sel_variance_a(t_small);
        let v_large = large.sel_variance_a(t_large);
        assert!(v_small > 30.0 * v_large, "{v_small} vs {v_large}");
        assert!((v_small - 0.25 / 255.0).abs() < 0.25 / 255.0, "{v_small}");
        // Degenerate selectivities carry no sampling variance, and the
        // variance is always a finite non-negative number.
        assert_eq!(large.sel_variance_a(i64::MIN), 0.0);
        assert_eq!(large.sel_variance_b(i64::MAX), 0.0);
        for t in [0i64, 100, 1000, 10_000] {
            let v = large.sel_variance_b(t);
            assert!(v.is_finite() && v >= 0.0, "{v} at {t}");
        }
        // Empty samples report zero, not NaN.
        let empty = JointHistogram::build(vec![], 100, JointHistogramConfig::default());
        assert_eq!(empty.sel_variance_a(5), 0.0);
    }

    #[test]
    fn empty_sample_is_sane() {
        let h = JointHistogram::build(vec![], 100, JointHistogramConfig::default());
        assert_eq!(h.estimate_joint_at_most(5, 5), 0.0);
        assert_eq!(h.sample_rows(), 0);
        assert_eq!(h.rows(), 100);
    }

    #[test]
    fn workload_build_is_deterministic_and_sampled() {
        let cfg = crate::gen::WorkloadConfig {
            rows: 1 << 12,
            seed: 21,
            predicate_dist: PredicateDistribution::CorrelatedHundredths(75),
            mutation_epoch: 0,
        };
        let w = TableBuilder::build(cfg);
        let jcfg = JointHistogramConfig { sample_target: 1 << 10, ..Default::default() };
        let h1 = JointHistogram::from_workload(&w, &jcfg);
        let h2 = JointHistogram::from_workload(&w, &jcfg);
        assert_eq!(h1, h2);
        // Sampling hits the target within a small factor.
        assert!(h1.sample_rows() >= 1 << 8 && h1.sample_rows() <= 1 << 12);
        assert_eq!(h1.rows(), 1 << 12);
        // Correlation is visible through the sample: the joint estimate at
        // the diagonal midpoint is far above the independence product.
        let t = w.cal_a.threshold(0.5);
        let joint = h1.estimate_joint_at_most(t, t);
        assert!(joint > 0.3, "rho 0.75 at sel 0.5: joint {joint:.3} (product would be 0.25)");
    }

    #[test]
    fn stats_cache_roundtrip_is_bit_identical() {
        let wl = crate::gen::WorkloadConfig {
            rows: 1 << 12,
            seed: 0x5EED_CAC4E,
            predicate_dist: PredicateDistribution::CorrelatedHundredths(50),
            mutation_epoch: 0,
        };
        let w = TableBuilder::build(wl.clone());
        let jcfg = JointHistogramConfig { sample_target: 1 << 10, ..Default::default() };
        let Some(path) = stats_cache_path(&wl, &jcfg) else { return }; // cache disabled
        let _ = std::fs::remove_file(&path);
        let built = JointHistogram::build_cached(&w, &jcfg);
        assert!(path.exists(), "miss must populate the cache");
        let loaded = load(&wl, &jcfg).expect("stored statistics must load");
        assert_eq!(built, loaded);
        // A different statistics configuration misses.
        let other = JointHistogramConfig { seed: jcfg.seed ^ 1, ..jcfg };
        assert!(load(&wl, &other).is_none());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn corrupt_stats_files_miss() {
        let wl = crate::gen::WorkloadConfig {
            rows: 1 << 12,
            seed: 0xBAD_57A75,
            predicate_dist: PredicateDistribution::Permutation,
            mutation_epoch: 0,
        };
        let w = TableBuilder::build(wl.clone());
        let jcfg = JointHistogramConfig { sample_target: 1 << 10, ..Default::default() };
        let Some(path) = stats_cache_path(&wl, &jcfg) else { return };
        let _ = std::fs::remove_file(&path);
        store(&wl, &JointHistogram::from_workload(&w, &jcfg));
        let mut data = std::fs::read(&path).unwrap();
        data[STATS_MAGIC.len() + 5] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        assert!(load(&wl, &jcfg).is_none(), "corrupt file must miss");
        let _ = std::fs::remove_file(path);
    }
}
