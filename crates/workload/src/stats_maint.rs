//! Incremental statistics maintenance under churn.
//!
//! A cached [`JointHistogram`] goes quietly wrong as rows churn: the
//! equi-depth bucket boundaries were chosen for the base table, and every
//! insert/delete shifts mass the frozen bucket counts no longer reflect.
//! Rebuilding from scratch after every batch is exact but costs a full
//! heap scan; this module implements the middle road a real statistics
//! job takes — **per-bucket delta counters** folded in on each applied
//! batch:
//!
//! * [`MaintainedHistogram`] corrects a 1-D [`EquiDepthHistogram`] with a
//!   net row delta per bucket (inserts `+1`, deletes `-1`, interpolated
//!   at estimate time exactly like the base histogram's partial bucket);
//! * [`MaintainedJoint`] does the same for a [`JointHistogram`] on the
//!   `a-bucket x b-bucket` grid, with maintained marginals;
//! * [`Staleness`] is the meter: fraction of the base table modified plus
//!   a total-variation drift estimate of the insert distribution against
//!   the base equi-depth masses.  [`RebuildPolicy`] turns the meter into
//!   a rebuild decision;
//! * cache hygiene is structural: the workload's `mutation_epoch` is part
//!   of every content-addressed key ([`crate::cache::config_hash`]), so a
//!   `wl-jstats-*` entry written for epoch `e` can never be served for a
//!   table mutated past `e` (`epoch_invalidates_the_stats_cache_key`
//!   pins this).
//!
//! The corrected estimate is exact bookkeeping, approximate placement:
//! `rows_at_most(t) = base_estimate(t) * base_rows + delta(t)`, divided
//! by the live row count — deltas land in the bucket their value falls
//! in, so within-bucket placement error is bounded by one bucket, the
//! same resolution bound the base histogram already carries.

use crate::churn::AppliedBatch;
use crate::histogram::EquiDepthHistogram;
use crate::stats::JointHistogram;

/// How stale a maintained (or frozen) statistic is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Staleness {
    /// Rows touched by mutations over base rows (an update touches two).
    /// Uncapped; consumers widening variance should clamp as they see fit.
    pub fraction_modified: f64,
    /// Total-variation distance between the observed insert distribution
    /// over the base `a`-buckets and the base equi-depth masses, in
    /// `[0, 1]`: 0 means churn re-draws from the base shape, 1 means all
    /// new mass lands where the base had none.
    pub drift: f64,
}

impl Staleness {
    /// A fresh statistic: nothing modified, no drift.
    pub fn none() -> Self {
        Staleness { fraction_modified: 0.0, drift: 0.0 }
    }

    /// Scalar severity used for variance widening: the modified fraction,
    /// amplified by drift (drifted churn invalidates buckets faster than
    /// same-shape churn).  Clamped to `[0, 1]` per axis before use.
    pub fn severity(&self) -> f64 {
        (self.fraction_modified * (1.0 + self.drift)).max(0.0)
    }
}

/// When to throw the deltas away and rebuild from the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Rebuild once this fraction of the base table has been modified.
    pub max_fraction_modified: f64,
    /// Rebuild once the insert distribution has drifted this far (total
    /// variation) from the base shape.
    pub max_drift: f64,
}

impl Default for RebuildPolicy {
    /// Rebuild at half the table modified or 0.25 total-variation drift —
    /// the classic "20%-changed" auto-update heuristic, loosened because
    /// the delta counters keep estimates serviceable well past it.
    fn default() -> Self {
        RebuildPolicy { max_fraction_modified: 0.5, max_drift: 0.25 }
    }
}

impl RebuildPolicy {
    /// Does `staleness` call for a rebuild?
    pub fn should_rebuild(&self, staleness: &Staleness) -> bool {
        staleness.fraction_modified >= self.max_fraction_modified
            || staleness.drift >= self.max_drift
    }
}

/// Bucket index of `v` on an equi-depth bound list: bucket `i` holds
/// `(bounds[i-1], bounds[i]]` (bucket 0 from `min`); values past the last
/// bound clamp into the last bucket.
fn bucket_of(bounds: &[i64], v: i64) -> usize {
    bounds.partition_point(|&ub| ub < v).min(bounds.len().saturating_sub(1))
}

/// Interpolated prefix sum of per-bucket `deltas` at `value <= t`, the
/// delta twin of [`EquiDepthHistogram::estimate_at_most`]'s bucket walk.
fn delta_at_most(bounds: &[i64], min: i64, deltas: &[i64], t: i64) -> f64 {
    if t < min {
        return 0.0;
    }
    let k = bounds.partition_point(|&ub| ub <= t);
    let mut sum: f64 = deltas[..k.min(deltas.len())].iter().map(|&d| d as f64).sum();
    if k < bounds.len() {
        let lo = if k == 0 { min } else { bounds[k - 1] };
        let hi = bounds[k];
        let within = if hi > lo { (t - lo) as f64 / (hi - lo) as f64 } else { 0.0 };
        sum += within.clamp(0.0, 1.0) * deltas[k] as f64;
    }
    sum
}

/// A 1-D equi-depth histogram corrected by per-bucket delta counters.
#[derive(Debug, Clone)]
pub struct MaintainedHistogram {
    base: EquiDepthHistogram,
    live_rows: u64,
    deltas: Vec<i64>,
}

impl MaintainedHistogram {
    /// Wrap a freshly built `base` (deltas start at zero).
    pub fn new(base: EquiDepthHistogram) -> Self {
        let buckets = base.bucket_count();
        let live_rows = base.rows();
        MaintainedHistogram { base, live_rows, deltas: vec![0; buckets] }
    }

    /// The frozen base.
    pub fn base(&self) -> &EquiDepthHistogram {
        &self.base
    }

    /// Rows currently represented (base rows plus net inserts).
    pub fn live_rows(&self) -> u64 {
        self.live_rows
    }

    /// Fold one batch of values in.
    pub fn apply(&mut self, inserted: &[i64], deleted: &[i64]) {
        let (bounds, _, _) = self.base.parts();
        for &v in inserted {
            self.deltas[bucket_of(bounds, v)] += 1;
        }
        for &v in deleted {
            self.deltas[bucket_of(bounds, v)] -= 1;
        }
        self.live_rows = (self.live_rows + inserted.len() as u64) - deleted.len() as u64;
    }

    /// Corrected selectivity of `value <= t` over the live table.
    pub fn estimate_at_most(&self, t: i64) -> f64 {
        if self.live_rows == 0 {
            return 0.0;
        }
        let (bounds, base_rows, min) = self.base.parts();
        let rows = self.base.estimate_at_most(t) * base_rows as f64
            + delta_at_most(bounds, min, &self.deltas, t);
        (rows / self.live_rows as f64).clamp(0.0, 1.0)
    }
}

/// A [`JointHistogram`] corrected by delta counters on its
/// `a-bucket x b-bucket` grid, with maintained marginals and a
/// [`Staleness`] meter.
#[derive(Debug, Clone)]
pub struct MaintainedJoint {
    base: JointHistogram,
    marginal_a: MaintainedHistogram,
    marginal_b: MaintainedHistogram,
    /// Net row delta per `(a_bucket, b_bucket)` cell, row-major in `a`.
    grid: Vec<i64>,
    base_rows: u64,
    live_rows: u64,
    rows_modified: u64,
    /// Insert-only counts per `a`-bucket, for the drift estimate.
    ins_a: Vec<u64>,
    ins_total: u64,
}

impl MaintainedJoint {
    /// Wrap freshly built joint statistics (deltas start at zero).
    pub fn new(base: JointHistogram) -> Self {
        let marginal_a = MaintainedHistogram::new(base.marginal_a().clone());
        let marginal_b = MaintainedHistogram::new(base.marginal_b().clone());
        let a_len = base.marginal_a().bucket_count();
        let b_len = base.marginal_b().bucket_count();
        let rows = base.rows();
        MaintainedJoint {
            base,
            marginal_a,
            marginal_b,
            grid: vec![0; a_len * b_len],
            base_rows: rows,
            live_rows: rows,
            rows_modified: 0,
            ins_a: vec![0; a_len],
            ins_total: 0,
        }
    }

    /// The frozen base statistics.
    pub fn base(&self) -> &JointHistogram {
        &self.base
    }

    /// Rows currently represented.
    pub fn live_rows(&self) -> u64 {
        self.live_rows
    }

    /// The staleness meter.
    pub fn staleness(&self) -> Staleness {
        let drift = if self.ins_total == 0 {
            0.0
        } else {
            // Total variation between the insert distribution over the
            // base a-buckets and the base's (equi-depth, i.e. uniform)
            // bucket masses.
            let uniform = 1.0 / self.ins_a.len() as f64;
            0.5 * self
                .ins_a
                .iter()
                .map(|&c| (c as f64 / self.ins_total as f64 - uniform).abs())
                .sum::<f64>()
        };
        Staleness {
            fraction_modified: self.rows_modified as f64 / self.base_rows.max(1) as f64,
            drift,
        }
    }

    /// Fold one applied churn batch in.
    pub fn apply(&mut self, batch: &AppliedBatch) {
        let (a_bounds, _, _) = self.base.marginal_a().parts();
        let (b_bounds, _, _) = self.base.marginal_b().parts();
        let b_len = b_bounds.len();
        for &(a, b) in &batch.inserted {
            let (ai, bi) = (bucket_of(a_bounds, a), bucket_of(b_bounds, b));
            self.grid[ai * b_len + bi] += 1;
            self.ins_a[ai] += 1;
        }
        for &(a, b) in &batch.deleted {
            self.grid[bucket_of(a_bounds, a) * b_len + bucket_of(b_bounds, b)] -= 1;
        }
        self.ins_total += batch.inserted.len() as u64;
        let ins_a: Vec<i64> = batch.inserted.iter().map(|&(a, _)| a).collect();
        let del_a: Vec<i64> = batch.deleted.iter().map(|&(a, _)| a).collect();
        let ins_b: Vec<i64> = batch.inserted.iter().map(|&(_, b)| b).collect();
        let del_b: Vec<i64> = batch.deleted.iter().map(|&(_, b)| b).collect();
        self.marginal_a.apply(&ins_a, &del_a);
        self.marginal_b.apply(&ins_b, &del_b);
        self.live_rows = (self.live_rows + batch.inserted.len() as u64)
            - batch.deleted.len() as u64;
        self.rows_modified += batch.rows_applied;
    }

    /// Corrected marginal selectivity of `a <= ta`.
    pub fn estimate_a(&self, ta: i64) -> f64 {
        self.marginal_a.estimate_at_most(ta)
    }

    /// Corrected marginal selectivity of `b <= tb`.
    pub fn estimate_b(&self, tb: i64) -> f64 {
        self.marginal_b.estimate_at_most(tb)
    }

    /// Corrected joint selectivity of `a <= ta AND b <= tb`: the base
    /// estimate scaled back to rows, plus the bilinearly interpolated
    /// prefix sum of the delta grid, over the live row count.
    pub fn estimate_ab(&self, ta: i64, tb: i64) -> f64 {
        if self.live_rows == 0 {
            return 0.0;
        }
        let (a_bounds, _, min_a) = self.base.marginal_a().parts();
        let (b_bounds, _, min_b) = self.base.marginal_b().parts();
        let wa = prefix_weights(a_bounds, min_a, ta);
        let wb = prefix_weights(b_bounds, min_b, tb);
        let b_len = b_bounds.len();
        let mut delta = 0.0;
        for (ai, &w_a) in wa.iter().enumerate() {
            if w_a == 0.0 {
                continue;
            }
            let mut row_sum = 0.0;
            for (bi, &w_b) in wb.iter().enumerate() {
                if w_b != 0.0 {
                    row_sum += w_b * self.grid[ai * b_len + bi] as f64;
                }
            }
            delta += w_a * row_sum;
        }
        let rows = self.base.estimate_joint_at_most(ta, tb) * self.base_rows as f64 + delta;
        (rows / self.live_rows as f64).clamp(0.0, 1.0)
    }
}

/// Per-bucket coverage weights of the predicate `value <= t`: 1 for fully
/// covered buckets, the interpolated fraction for the boundary bucket, 0
/// beyond — the vector form of [`delta_at_most`]'s walk, for the 2-D case.
fn prefix_weights(bounds: &[i64], min: i64, t: i64) -> Vec<f64> {
    let mut w = vec![0.0; bounds.len()];
    if t < min {
        return w;
    }
    let k = bounds.partition_point(|&ub| ub <= t);
    for x in w.iter_mut().take(k) {
        *x = 1.0;
    }
    if k < bounds.len() {
        let lo = if k == 0 { min } else { bounds[k - 1] };
        let hi = bounds[k];
        let within = if hi > lo { (t - lo) as f64 / (hi - lo) as f64 } else { 0.0 };
        w[k] = within.clamp(0.0, 1.0);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::{ChurnConfig, ChurnDriver};
    use crate::gen::{TableBuilder, Workload, WorkloadConfig, COL_A, COL_B};
    use crate::stats::{stats_cache_path, JointHistogramConfig};
    use robustmap_storage::Session;

    fn workload(seed: u64) -> Workload {
        TableBuilder::build(WorkloadConfig { rows: 1 << 12, seed, ..Default::default() })
    }

    fn jcfg() -> JointHistogramConfig {
        JointHistogramConfig { sample_target: 1 << 12, ..Default::default() }
    }

    /// Exact selectivities straight off the mutated heap.
    fn truth(w: &Workload, ta: i64, tb: i64) -> (f64, f64, f64) {
        let s = Session::with_pool_pages(0);
        let (mut na, mut nb, mut nab, mut n) = (0u64, 0u64, 0u64, 0u64);
        w.db.table(w.table).heap.scan(&s, |_, row| {
            let (a, b) = (row.get(COL_A), row.get(COL_B));
            na += u64::from(a <= ta);
            nb += u64::from(b <= tb);
            nab += u64::from(a <= ta && b <= tb);
            n += 1;
        });
        (na as f64 / n as f64, nb as f64 / n as f64, nab as f64 / n as f64)
    }

    #[test]
    fn maintained_estimates_track_a_churned_table() {
        let mut w = workload(41);
        let base = crate::stats::JointHistogram::from_workload(&w, &jcfg());
        let mut maint = MaintainedJoint::new(base.clone());
        let cfg = ChurnConfig::for_workload(&w).with_drift(50);
        let mut driver = ChurnDriver::new(&w, cfg);
        let s = Session::with_pool_pages(64);
        for b in driver.apply_until_fraction(&mut w, &s, 0.5) {
            maint.apply(&b);
        }
        assert_eq!(maint.live_rows(), w.db.table(w.table).heap.row_count());
        let n = 1 << 12;
        for (ta, tb) in [(n / 8, n / 2), (n / 2, n / 4), (3 * n / 4, 3 * n / 4)] {
            let (sa, sb, sab) = truth(&w, ta, tb);
            let frozen_err = (base.marginal_a().estimate_at_most(ta) - sa).abs();
            let maint_err = (maint.estimate_a(ta) - sa).abs();
            // Maintained marginals stay near truth; the frozen base has
            // drifted by construction (upper-half inserts).
            assert!(maint_err < 0.03, "ta={ta}: maintained err {maint_err:.4}");
            assert!(maint_err <= frozen_err + 0.01, "ta={ta}: frozen beat maintained");
            assert!((maint.estimate_b(tb) - sb).abs() < 0.04, "tb={tb}");
            assert!((maint.estimate_ab(ta, tb) - sab).abs() < 0.05, "({ta},{tb})");
        }
    }

    #[test]
    fn zero_churn_estimates_equal_the_base_bitwise() {
        let w = workload(43);
        let base = crate::stats::JointHistogram::from_workload(&w, &jcfg());
        let maint = MaintainedJoint::new(base.clone());
        for t in [0i64, 100, 1 << 10, (1 << 12) - 1] {
            assert_eq!(
                maint.estimate_a(t).to_bits(),
                base.marginal_a().estimate_at_most(t).to_bits()
            );
            assert_eq!(
                maint.estimate_ab(t, t / 2).to_bits(),
                base.estimate_joint_at_most(t, t / 2).to_bits()
            );
        }
        assert_eq!(maint.staleness(), Staleness::none());
    }

    #[test]
    fn staleness_meter_tracks_fraction_and_drift() {
        let mut w = workload(47);
        let base = crate::stats::JointHistogram::from_workload(&w, &jcfg());
        let mut maint = MaintainedJoint::new(base);
        let cfg = ChurnConfig { batch_ops: 256, ..ChurnConfig::for_workload(&w) }.with_drift(50);
        let mut driver = ChurnDriver::new(&w, cfg);
        let s = Session::with_pool_pages(64);
        for b in driver.apply_until_fraction(&mut w, &s, 0.25) {
            maint.apply(&b);
        }
        let m = maint.staleness();
        assert!((m.fraction_modified - driver.fraction_touched()).abs() < 1e-12);
        assert!(m.fraction_modified >= 0.25);
        // Upper-half inserts: half the buckets get nothing, TV -> ~0.5.
        assert!(m.drift > 0.3, "drift {:.3}", m.drift);
        assert!(m.severity() > m.fraction_modified);
    }

    #[test]
    fn rebuild_policy_thresholds() {
        let p = RebuildPolicy::default();
        assert!(!p.should_rebuild(&Staleness::none()));
        assert!(p.should_rebuild(&Staleness { fraction_modified: 0.5, drift: 0.0 }));
        assert!(p.should_rebuild(&Staleness { fraction_modified: 0.1, drift: 0.3 }));
        let tight = RebuildPolicy { max_fraction_modified: 0.05, max_drift: 1.0 };
        assert!(tight.should_rebuild(&Staleness { fraction_modified: 0.06, drift: 0.0 }));
    }

    #[test]
    fn epoch_invalidates_the_stats_cache_key() {
        // A drifted `wl-jstats-*` entry can never be served for mutated
        // data: the mutation epoch is part of the content hash, so the
        // churned config addresses a different file (and the stored-config
        // comparison backstops even a hash collision).
        let mut w = workload(53);
        let before_wl = crate::cache::config_hash(&w.config);
        let before = stats_cache_path(&w.config, &jcfg());
        let mut driver = ChurnDriver::new(&w, ChurnConfig::for_workload(&w));
        let s = Session::with_pool_pages(64);
        let mut w2 = w;
        driver.apply_batch(&mut w2, &s);
        assert_ne!(before_wl, crate::cache::config_hash(&w2.config));
        let after = stats_cache_path(&w2.config, &jcfg());
        match (before, after) {
            (Some(b), Some(a)) => assert_ne!(b, a),
            (None, None) => {} // caching disabled in this environment
            _ => panic!("cache enablement changed mid-test"),
        }
        w = w2;
        let _ = &w;
    }
}
