//! Property-based tests for the joint (multi-column) statistics: the
//! invariants the robust chooser leans on, for *any* data — estimates are
//! probabilities, marginals agree with the 1-D catalog within bucket
//! resolution, and builds are pure functions of `(seed, workload)` that
//! round-trip the statistics cache bit-identically.

use proptest::prelude::*;
use robustmap_workload::gen::PredicateDistribution;
use robustmap_workload::{
    stats, EquiDepthHistogram, JointHistogram, JointHistogramConfig, TableBuilder, WorkloadConfig,
};

/// Pair generator: `b` copies `a` with probability `rho_pct`% (hashed by
/// index, deterministic), else takes an independent value — the data shape
/// the joint histogram exists to capture.
fn pairs(n: usize, rho_pct: u64, seed: u64) -> Vec<(i64, i64)> {
    let mix = |i: u64, salt: u64| {
        let mut z = seed
            .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(salt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 27)
    };
    (0..n as u64)
        .map(|i| {
            let a = (mix(i, 1) % (n as u64)) as i64;
            let b = if mix(i, 2) % 100 < rho_pct { a } else { (mix(i, 3) % (n as u64)) as i64 };
            (a, b)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Joint estimates are probabilities ([0, 1]), monotone in both
    /// thresholds, and coherent with the marginals (never above either).
    #[test]
    fn joint_estimates_are_coherent_probabilities(
        n in 64usize..4000,
        rho_pct in 0u64..=100,
        seed in any::<u64>(),
        a_buckets in 1usize..40,
        b_buckets in 1usize..12,
    ) {
        let data = pairs(n, rho_pct, seed);
        let cfg = JointHistogramConfig { a_buckets, b_buckets, ..Default::default() };
        let h = JointHistogram::build(data, n as u64, cfg);
        let probes: Vec<i64> = vec![i64::MIN, -1, 0, n as i64 / 7, n as i64 / 2, n as i64, i64::MAX];
        let mut last_diag = 0.0f64;
        for &ta in &probes {
            for &tb in &probes {
                let j = h.estimate_joint_at_most(ta, tb);
                prop_assert!((0.0..=1.0).contains(&j), "joint {j} at ({ta}, {tb})");
                // Coherence: the conjunction never exceeds either marginal
                // by more than interpolation resolution.
                let tol = 1.5 / a_buckets as f64 + 1.5 / b_buckets as f64;
                prop_assert!(j <= h.marginal_a().estimate_at_most(ta) + tol);
                prop_assert!(j <= h.marginal_b().estimate_at_most(tb) + tol);
            }
            // Monotone along the diagonal (probes ascend).
            let d = h.estimate_joint_at_most(ta, ta);
            prop_assert!(d >= last_diag - 1e-12, "diagonal dipped at {ta}");
            last_diag = d;
        }
        // Full-range estimate: 1 up to float accumulation over the buckets.
        let full = h.estimate_joint_at_most(i64::MAX, i64::MAX);
        prop_assert!(full > 1.0 - 1e-9, "full-range joint {full}");
        prop_assert_eq!(h.estimate_joint_at_most(i64::MIN, i64::MAX), 0.0);
    }

    /// The observed sampling variance of a marginal estimate is a bounded
    /// binomial variance: finite, non-negative, at most `0.25 / (m - 1)`,
    /// and exactly zero where the estimate is degenerate (0 or 1).
    #[test]
    fn sel_variance_is_a_bounded_binomial_variance(
        n in 64usize..3000,
        rho_pct in 0u64..=100,
        seed in any::<u64>(),
    ) {
        let data = pairs(n, rho_pct, seed);
        let m = data.len() as u64;
        let h = JointHistogram::build(data, n as u64, JointHistogramConfig::default());
        let cap = 0.25 / (m - 1) as f64;
        for &t in &[i64::MIN, -1, 0, n as i64 / 7, n as i64 / 2, n as i64, i64::MAX] {
            for v in [h.sel_variance_a(t), h.sel_variance_b(t)] {
                prop_assert!(v.is_finite() && v >= 0.0, "variance {v} at {t}");
                prop_assert!(v <= cap + 1e-15, "variance {v} above the p=1/2 cap {cap}");
            }
        }
        prop_assert_eq!(h.sel_variance_a(i64::MIN), 0.0);
        prop_assert_eq!(h.sel_variance_b(i64::MAX), 0.0);
    }

    /// The joint histogram's marginals agree with directly built 1-D
    /// equi-depth histograms over the same sample, within bucket
    /// resolution.
    #[test]
    fn marginals_agree_with_the_1d_histograms(
        n in 64usize..3000,
        rho_pct in 0u64..=100,
        seed in any::<u64>(),
    ) {
        let data = pairs(n, rho_pct, seed);
        let cfg = JointHistogramConfig::default();
        let h = JointHistogram::build(data.clone(), n as u64, cfg);
        let ref_a = EquiDepthHistogram::build(data.iter().map(|p| p.0).collect(), cfg.a_buckets);
        let ref_b = EquiDepthHistogram::build(data.iter().map(|p| p.1).collect(), cfg.a_buckets);
        // The marginal histograms are the same construction: identical.
        prop_assert_eq!(h.marginal_a(), &ref_a);
        prop_assert_eq!(h.marginal_b(), &ref_b);
        // And the *joint* estimate with one side unconstrained reproduces
        // the other marginal within bucket resolution — here the operative
        // resolution is the conditional histograms' (each per-a-bucket
        // piece interpolates at 1/b_buckets), plus the a-partition's.
        let tol = 1.5 / cfg.b_buckets as f64 + 1.5 / cfg.a_buckets as f64;
        for &t in &[0i64, n as i64 / 5, n as i64 / 2, n as i64] {
            let via_joint = h.estimate_joint_at_most(i64::MAX, t);
            let direct = ref_b.estimate_at_most(t);
            prop_assert!(
                (via_joint - direct).abs() <= tol,
                "t={t}: joint-marginal {via_joint:.4} vs direct {direct:.4} (tol {tol:.4})"
            );
        }
    }

    /// Builds are deterministic for a fixed (seed, workload): the sample
    /// draw is a pure function of row index, never of iteration state.
    #[test]
    fn builds_are_deterministic_for_fixed_seed_and_workload(
        wl_seed in any::<u64>(),
        stats_seed in any::<u64>(),
        rho_idx in 0usize..3,
    ) {
        let rho = [0u32, 50, 100][rho_idx];
        let cfg = WorkloadConfig {
            rows: 1 << 10,
            seed: wl_seed,
            predicate_dist: PredicateDistribution::CorrelatedHundredths(rho),
            mutation_epoch: 0,
        };
        let w = TableBuilder::build(cfg);
        let jcfg = JointHistogramConfig {
            sample_target: 1 << 8,
            seed: stats_seed,
            ..Default::default()
        };
        let h1 = JointHistogram::from_workload(&w, &jcfg);
        let h2 = JointHistogram::from_workload(&w, &jcfg);
        prop_assert_eq!(&h1, &h2);
        // A different statistics seed samples differently (not a proof of
        // good mixing, just that the seed is live) — estimates still agree
        // loosely, structures usually differ.
        let h3 = JointHistogram::from_workload(
            &w,
            &JointHistogramConfig { seed: stats_seed ^ 0xFFFF, ..jcfg },
        );
        prop_assert_eq!(h3.rows(), h1.rows());
    }
}

/// The cache round-trip contract, mirroring `tests/cache_determinism.rs`:
/// store + load reproduces the built statistics bit-identically
/// (`JointHistogram` is `PartialEq` over every field), and a second build
/// from scratch agrees too.
#[test]
fn stats_cache_roundtrip_is_bit_identical_and_rebuild_agrees() {
    let wl = WorkloadConfig {
        rows: 1 << 12,
        seed: 0x1057_CAFE,
        predicate_dist: PredicateDistribution::CorrelatedHundredths(80),
        mutation_epoch: 0,
    };
    let w = TableBuilder::build(wl.clone());
    let jcfg = JointHistogramConfig { sample_target: 1 << 10, ..Default::default() };
    let Some(path) = stats::stats_cache_path(&wl, &jcfg) else {
        return; // caching disabled in this environment
    };
    let _ = std::fs::remove_file(&path);

    // Miss: builds and stores.
    let built = JointHistogram::build_cached(&w, &jcfg);
    assert!(path.exists(), "miss must populate the statistics cache");
    // Hit: loads the stored bytes, field-for-field identical.
    let loaded = JointHistogram::build_cached(&w, &jcfg);
    assert_eq!(built, loaded);
    // Fresh build from a fresh workload build: also identical (generation
    // and sampling are deterministic; the cache adds no wobble).
    let rebuilt = JointHistogram::from_workload(&TableBuilder::build(wl.clone()), &jcfg);
    assert_eq!(built, rebuilt);
    // Estimates served from the cache match the built ones exactly.
    for sel in [0.01f64, 0.25, 0.75] {
        let (ta, tb) = (w.cal_a.threshold(sel), w.cal_b.threshold(sel));
        assert_eq!(
            built.estimate_joint_at_most(ta, tb),
            loaded.estimate_joint_at_most(ta, tb)
        );
    }
    let _ = std::fs::remove_file(path);
}
