//! Property-based tests for workload generation: the calibration
//! guarantees that every figure sweep relies on.

use proptest::prelude::*;
use robustmap_workload::{Calibrator, Distribution, Permutation, Zipf};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Permutations are bijections for any domain size and seed.
    #[test]
    fn permutation_bijective(n in 1u64..5000, seed in any::<u64>()) {
        let p = Permutation::new(n, seed);
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let v = p.apply(i);
            prop_assert!(v < n);
            prop_assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    /// Calibrator round trip: for any value multiset and any target
    /// selectivity, the chosen threshold's true count is within one
    /// boundary-value group of the target, and never undershoots.
    #[test]
    fn calibrator_roundtrip(
        values in prop::collection::vec(-1000i64..1000, 1..2000),
        sel in 0.0f64..=1.0,
    ) {
        let n = values.len() as f64;
        let cal = Calibrator::new(values.clone());
        let (t, count) = cal.threshold_with_count(sel);
        // The reported count is the truth.
        let truth = values.iter().filter(|&&v| v <= t).count() as u64;
        prop_assert_eq!(count, truth);
        // Never undershoots the target by more than rounding.
        let target = (sel * n).round() as u64;
        prop_assert!(count >= target.min(values.len() as u64),
            "count {count} under target {target}");
        // Monotone: larger selectivity never yields a smaller threshold.
        let (t2, count2) = cal.threshold_with_count((sel + 0.1).min(1.0));
        prop_assert!(t2 >= t);
        prop_assert!(count2 >= count);
    }

    /// count_at_most is monotone and bounded.
    #[test]
    fn count_at_most_monotone(
        values in prop::collection::vec(-100i64..100, 0..500),
        probes in prop::collection::vec(-120i64..120, 1..20),
    ) {
        let cal = Calibrator::new(values.clone());
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let counts: Vec<u64> = sorted.iter().map(|&p| cal.count_at_most(p)).collect();
        prop_assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(counts.iter().all(|&c| c <= values.len() as u64));
    }

    /// Zipf samples stay in the domain and are deterministic per seed.
    #[test]
    fn zipf_domain_and_determinism(
        domain in 1u64..512,
        theta_tenths in 0u32..25,
        seed in any::<u64>(),
    ) {
        let theta = theta_tenths as f64 / 10.0;
        let mut z1 = Zipf::new(domain, theta, seed);
        let mut z2 = Zipf::new(domain, theta, seed);
        for i in 0..200 {
            let v1 = z1.value(i);
            prop_assert!((0..domain as i64).contains(&v1));
            prop_assert_eq!(v1, z2.value(i));
        }
    }
}
