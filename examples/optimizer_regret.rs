//! Optimizer regret: what bad cardinality estimates cost, and what robust
//! plans buy.
//!
//! A textbook cost-based optimizer picks the estimated-cheapest of the
//! fifteen plans at each point of the selectivity space.  We then charge it
//! the *measured* cost of its choice relative to the true best plan — its
//! regret — under increasingly wrong selectivity estimates.
//!
//! ```text
//! cargo run --release --example optimizer_regret
//! ```

use robustmap::core::{build_map2d, Grid2D, MeasureConfig, RelativeMap2D};
use robustmap::systems::choice::WithError;
use robustmap::systems::{
    two_predicate_plans, CatalogStats, ChoicePolicy, Chooser, SystemId, TwoPredPlan,
};
use robustmap::workload::{TableBuilder, WorkloadConfig};

fn main() {
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 18));
    let plans: Vec<TwoPredPlan> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, &w)).collect();
    let grid = Grid2D::pow2(12);
    println!("measuring {} plans over {} cells...", plans.len(), grid.cells());
    let cfg = MeasureConfig::default();
    let map = build_map2d(&w, &plans, &grid, &cfg);
    let rel = RelativeMap2D::from_map(&map);
    let stats = CatalogStats::of(&w);
    let chooser =
        Chooser { plans: &plans, stats: &stats, model: &cfg.model, policy: ChoicePolicy::Point };
    let (na, nb) = rel.dims();

    println!(
        "\n{:>18} {:>12} {:>12} {:>20}",
        "estimate error", "mean regret", "max regret", "most-chosen plan"
    );
    for (label, err) in
        [("exact", 1.0), ("4x under", 0.25), ("64x under", 1.0 / 64.0), ("64x over", 64.0)]
    {
        let est = WithError::of(&w, err, err);
        let mut sum = 0.0;
        let mut max: f64 = 1.0;
        let mut histogram = vec![0usize; plans.len()];
        for ia in 0..na {
            for ib in 0..nb {
                let (sa, sb) = (rel.sel_a[ia], rel.sel_b[ib]);
                let (ta, tb) = (w.cal_a.threshold(sa), w.cal_b.threshold(sb));
                let chosen = chooser.choose(&est, ta, tb).plan;
                histogram[chosen] += 1;
                let regret = rel.quotient(chosen, ia, ib);
                sum += regret;
                max = max.max(regret);
            }
        }
        let favourite = histogram
            .iter()
            .enumerate()
            .max_by_key(|&(_, n)| *n)
            .map(|(i, _)| plans[i].name.as_str())
            .unwrap_or("-");
        println!(
            "{:>18} {:>11.2}x {:>11.0}x {:>20}",
            label,
            sum / (na * nb) as f64,
            max,
            favourite
        );
    }
    println!(
        "\nthe paper's point, quantified: when estimates are hopeless, the chooser converges \
         on the robust covering/bitmap plans — and does *better* than with moderate errors. \
         \"Robustness might well trump performance.\" (§3.3)"
    );
}
