//! Quickstart: build a workload, sweep Figure 1's three plans, print the
//! robustness map and its landmarks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use robustmap::core::render::{line_plot_svg, render_map1d_table};
use robustmap::core::report::landmark_report;
use robustmap::core::{build_map1d, Grid1D, MeasureConfig};
use robustmap::systems::{single_predicate_plans, SinglePredPlanSet};
use robustmap::workload::{TableBuilder, WorkloadConfig};

fn main() {
    // 2^18 rows keeps this example under a couple of seconds while showing
    // the same curve shapes as the paper's 60M-row table.
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 18));
    println!("workload: {} rows over {} heap pages\n", w.rows(), w.heap_pages());

    // The paper's Figure 1: table scan vs. traditional vs. improved index
    // scan, selectivities swept in factor-of-two steps.
    let plans = single_predicate_plans(SinglePredPlanSet::Basic, &w);
    let grid = Grid1D::pow2(14);
    let map = build_map1d(&w, &plans, &grid, &MeasureConfig::default());

    println!("{}", render_map1d_table(&map, "Figure 1 on your machine (simulated seconds)"));
    println!("{}", landmark_report(&map));

    // Robustness in one sentence: the improved index scan is never far
    // from the best plan; the traditional one is catastrophic at the end.
    let rel = map.relative();
    for (plan, quotients) in rel {
        let worst = quotients.iter().copied().fold(1.0, f64::max);
        println!("worst-case factor vs best plan — {plan}: {worst:.1}x");
    }

    let svg = line_plot_svg(&map, "Figure 1 (quickstart)", "seconds (log)");
    std::fs::create_dir_all("target/figures").expect("create output dir");
    std::fs::write("target/figures/quickstart.svg", svg).expect("write svg");
    println!("\nwrote target/figures/quickstart.svg");
}
