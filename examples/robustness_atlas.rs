//! Robustness atlas: 2-D maps for every plan of every system, rendered as
//! ANSI heat maps in the terminal — the paper's Figures 4-9 as a gallery,
//! plus the Figure 10 optimal-plans summary.
//!
//! ```text
//! cargo run --release --example robustness_atlas            # color output
//! cargo run --release --example robustness_atlas -- --plain # ASCII only
//! ```

use robustmap::core::render::{
    absolute_scale, relative_scale, render_map2d_ansi, AsciiOptions,
};
use robustmap::core::report::{multi_optimal_report, relative_report};
use robustmap::core::{build_map2d, Grid2D, MeasureConfig, OptimalityTolerance, RelativeMap2D};
use robustmap::systems::{two_predicate_plans, SystemId, TwoPredPlan};
use robustmap::workload::{TableBuilder, WorkloadConfig};

fn main() {
    let plain = std::env::args().any(|a| a == "--plain");
    let opts = AsciiOptions { ansi: !plain, cell_width: 2 };

    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 18));
    let plans: Vec<TwoPredPlan> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, &w)).collect();
    println!(
        "sweeping {} plans over a {}x{} selectivity grid ({} rows)...\n",
        plans.len(),
        13,
        13,
        w.rows()
    );
    let grid = Grid2D::pow2(12);
    let map = build_map2d(&w, &plans, &grid, &MeasureConfig::default());
    let rel = RelativeMap2D::from_map(&map);

    // Absolute map of each plan (Figure 4/5 style).
    for p in 0..map.plan_count() {
        let (lo, hi) = map.seconds_range(p);
        println!(
            "{}",
            render_map2d_ansi(
                &map.seconds_grid(p),
                &map.sel_a,
                &map.sel_b,
                &absolute_scale(),
                &format!("{} — absolute ({lo:.3}s .. {hi:.2}s)", map.plans[p]),
                &opts,
            )
        );
        // Relative map (Figure 7/8/9 style).
        println!(
            "{}",
            render_map2d_ansi(
                rel.quotient_grid(p),
                &rel.sel_a,
                &rel.sel_b,
                &relative_scale(),
                &format!("{} — factor vs best of all {} plans", map.plans[p], map.plan_count()),
                &opts,
            )
        );
    }

    println!("{}", relative_report(&rel));
    println!("{}", multi_optimal_report(&rel, OptimalityTolerance::Factor(1.2)));
}
