//! The sort-spill cliff (paper §4): an operator that spills its entire
//! input the moment it exceeds memory shows a cost *discontinuity*; a
//! graceful implementation (replacement selection) degrades in proportion
//! to the overflow.
//!
//! Two things are needed to make the cliff visible, and both are done
//! here (and in the fuller `ext_sort_spill` harness entry): the sort's
//! own cost is isolated from its scan child via the per-operator
//! breakdown (the scan's constant cost would otherwise mask the jump),
//! and the input sweep is fine-grained around the memory threshold so
//! "merely a single record" of overflow sits between adjacent points.
//!
//! ```text
//! cargo run --release --example sort_spill_cliff
//! ```

use robustmap::core::analysis::changepoint::{detect_changepoints, ChangepointConfig};
use robustmap::core::MeasureConfig;
use robustmap::executor::ops::sort::sort_capacity_rows;
use robustmap::executor::{
    execute_count, ColRange, ExecCtx, PlanSpec, Predicate, Projection, SpillMode,
};
use robustmap::storage::{BufferPool, Session};
use robustmap::workload::{TableBuilder, WorkloadConfig, COL_A, COL_C};

fn main() {
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 18));
    let memory = 1 << 18; // 256 KiB of sort memory (~3.2k rows)
    let cfg = MeasureConfig::default();

    let plan = |rows_wanted: f64, mode: SpillMode| {
        let threshold = w.cal_a.threshold(rows_wanted / w.rows() as f64);
        PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan {
                table: w.table,
                pred: Predicate::single(ColRange::at_most(COL_A, threshold)),
                project: Projection::Columns(vec![COL_C, COL_A]),
            }),
            key_cols: vec![0],
            mode,
            memory_bytes: memory,
        }
    };
    // Sort-exclusive seconds: the Sort node's inclusive time minus its
    // child's, read off the execution's operator breakdown.
    let sort_only = |plan: &PlanSpec| -> (f64, u64, u64) {
        let session =
            Session::new(cfg.model.clone(), BufferPool::new(cfg.pool_pages, cfg.policy));
        let ctx = ExecCtx::new(&w.db, &session, cfg.memory_bytes);
        let stats = execute_count(plan, &ctx).expect("well-formed plan");
        let child = stats.operators.iter().find(|o| o.depth == 1).expect("child").seconds;
        let root = stats.operators.iter().find(|o| o.depth == 0).expect("root").seconds;
        (root - child, stats.io.page_writes, stats.rows_out)
    };

    // The sort's in-memory capacity in rows for this grant; sweep densely
    // around it so the cliff sits between adjacent points.
    let threshold_rows = sort_capacity_rows(memory) as f64;
    println!("sort memory grant {memory} B ≈ {threshold_rows:.0} rows; sweep input size:\n");
    println!(
        "{:>9} {:>12} {:>12} {:>14} {:>14}",
        "rows", "abrupt (s)", "graceful (s)", "abrupt writes", "graceful writes"
    );

    let mut axis = Vec::new();
    let mut abrupt = Vec::new();
    let mut graceful = Vec::new();
    for factor in [0.25, 0.5, 0.9, 0.99, 1.01, 1.1, 2.0, 8.0, 32.0] {
        let (sa, wa, rows) = sort_only(&plan(threshold_rows * factor, SpillMode::Abrupt));
        let (sg, wg, _) = sort_only(&plan(threshold_rows * factor, SpillMode::Graceful));
        println!("{rows:>9} {sa:>12.5} {sg:>12.5} {wa:>14} {wg:>14}");
        axis.push(rows.max(1) as f64);
        abrupt.push(sa);
        graceful.push(sg);
    }

    let cp = ChangepointConfig::default();
    let a = detect_changepoints(&axis, &abrupt, &cp);
    let g = detect_changepoints(&axis, &graceful, &cp);
    println!(
        "\nchangepoints — abrupt: {} cliff(s) (the predicted level shift), graceful: {} \
         cliff(s), {} knee(s)",
        a.cliff_count(),
        g.cliff_count(),
        g.knee_count(),
    );
    for c in a.cliffs() {
        println!(
            "  abrupt sort jumps {:.1}x beyond the local trend at ~{:.0} input rows",
            c.severity, c.at_work
        );
    }
    for k in g.knees() {
        println!(
            "  graceful sort bends at ~{:.0} rows (log-log slope break {:.1}) — degradation \
             in proportion to the overflow, no level shift",
            k.at_work, k.severity
        );
    }
    assert!(a.cliff_count() > 0, "the abrupt sort should show its cliff");
    assert_eq!(g.cliff_count(), 0, "the graceful sort must not show a cliff");
}
