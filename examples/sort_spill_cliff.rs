//! The sort-spill cliff (paper §4): an operator that spills its entire
//! input the moment it exceeds memory shows a cost *discontinuity*; a
//! graceful implementation (replacement selection) degrades in proportion
//! to the overflow.
//!
//! ```text
//! cargo run --release --example sort_spill_cliff
//! ```

use robustmap::core::analysis::discontinuity::detect_discontinuities;
use robustmap::core::{measure_plan, MeasureConfig};
use robustmap::executor::{ColRange, PlanSpec, Predicate, Projection, SpillMode};
use robustmap::workload::{TableBuilder, WorkloadConfig, COL_A, COL_C};

fn main() {
    let w = TableBuilder::build(WorkloadConfig::with_rows(1 << 18));
    let memory = 1 << 18; // 256 KiB of sort memory (~3.2k rows)
    let cfg = MeasureConfig::default();

    println!("sorting scan output under a {memory}-byte grant; sweep input size:\n");
    println!(
        "{:>9} {:>12} {:>12} {:>14} {:>14}",
        "rows", "abrupt (s)", "graceful (s)", "abrupt writes", "graceful writes"
    );

    let mut axis = Vec::new();
    let mut abrupt = Vec::new();
    let mut graceful = Vec::new();
    for exp in (0..=12u32).rev() {
        let sel = 0.5f64.powi(exp as i32);
        let threshold = w.cal_a.threshold(sel);
        let plan = |mode: SpillMode| PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan {
                table: w.table,
                pred: Predicate::single(ColRange::at_most(COL_A, threshold)),
                project: Projection::Columns(vec![COL_C, COL_A]),
            }),
            key_cols: vec![0],
            mode,
            memory_bytes: memory,
        };
        let ma = measure_plan(&w.db, &plan(SpillMode::Abrupt), &cfg);
        let mg = measure_plan(&w.db, &plan(SpillMode::Graceful), &cfg);
        println!(
            "{:>9} {:>12.4} {:>12.4} {:>14} {:>14}",
            ma.rows, ma.seconds, mg.seconds, ma.io.page_writes, mg.io.page_writes
        );
        axis.push(ma.rows.max(1) as f64);
        abrupt.push(ma.seconds);
        graceful.push(mg.seconds);
    }

    let cliff_a = detect_discontinuities(&axis, &abrupt, 4.0);
    let cliff_g = detect_discontinuities(&axis, &graceful, 4.0);
    println!(
        "\ndiscontinuities detected — abrupt: {} (the predicted cliff), graceful: {}",
        cliff_a.len(),
        cliff_g.len()
    );
    for d in cliff_a {
        println!(
            "  abrupt sort jumps {:.1}x between adjacent input sizes (work grew only {:.1}x)",
            d.cost_ratio, d.work_ratio
        );
    }
}
