//! Cross-system shootout (paper §3.3, opportunity 2): compare the best
//! available plan of Systems A, B and C at every point of the parameter
//! space, and rank every plan with the §4 robustness benchmark.
//!
//! ```text
//! cargo run --release --example system_shootout
//! ```

use robustmap::core::analysis::score::score_map2d;
use robustmap::core::report::score_report;
use robustmap::core::{build_map2d, Grid2D, MeasureConfig, RelativeMap2D};
use robustmap::systems::{two_predicate_plans, SystemId, TwoPredPlan};
use robustmap::workload::{TableBuilder, WorkloadConfig};

fn main() {
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 18));
    let plans: Vec<TwoPredPlan> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, &w)).collect();
    let grid = Grid2D::pow2(12);
    println!("sweeping {} plans over {} cells...\n", plans.len(), grid.cells());
    let map = build_map2d(&w, &plans, &grid, &MeasureConfig::default());
    let rel = RelativeMap2D::from_map(&map);

    // Which system owns the best plan where?
    let (na, nb) = rel.dims();
    let mut wins = [0usize; 3];
    for ia in 0..na {
        for ib in 0..nb {
            let best = &map.plans[rel.best_plan_at(ia, ib)];
            match best.as_bytes()[0] {
                b'A' => wins[0] += 1,
                b'B' => wins[1] += 1,
                _ => wins[2] += 1,
            }
        }
    }
    let total = (na * nb) as f64;
    println!("share of the parameter space where each system fields the fastest plan:");
    for (name, w) in ["System A", "System B", "System C"].iter().zip(wins) {
        println!("  {name}: {:.1}%", w as f64 / total * 100.0);
    }

    // The robustness leaderboard (paper §4's benchmark).
    println!("\nrobustness benchmark over all {} plans:", map.plan_count());
    let scores: Vec<_> =
        (0..map.plan_count()).map(|p| score_map2d(&rel, p, &map.seconds_grid(p))).collect();
    println!("{}", score_report(&scores));

    println!(
        "reading: high 'headline' means gracefully degrading everywhere; plans that win big \
         somewhere but lose catastrophically elsewhere rank low — \"robustness might well \
         trump performance\" (§3.3)."
    );
}
