#!/usr/bin/env bash
# CI-style verification: build, tests (unit + integration + property +
# doc), clippy, and rustdoc — all with warnings denied.  Any warning or
# failure exits non-zero.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "== $*"
    "$@"
}

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"
export RUSTDOCFLAGS="${RUSTDOCFLAGS:--D warnings}"

run cargo build --release --workspace --all-targets
run cargo test -q --release --workspace
run cargo test -q --release --workspace --doc
run cargo clippy --release --workspace --all-targets -- -D warnings
run cargo doc --no-deps --workspace

echo "== smoke: regenerate Figure 1 at reduced scale"
run cargo run --release -p robustmap-bench --bin figures -- \
    --rows 16384 --grid 8 --out target/figures-verify fig1
test -s target/figures-verify/fig1.csv
test -s target/figures-verify/fig1.svg

echo "verify: all green"
