#!/usr/bin/env bash
# CI-style verification: build, tests (unit + integration + property +
# doc), clippy, and rustdoc — all with warnings denied — plus a figure
# smoke run executed twice (cold workload cache, then warm) so cache
# regressions show up as timing regressions right here.  Any warning or
# failure exits non-zero.  Each phase prints its wall time.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "== $*"
    local t0 t1
    t0=$(date +%s)
    "$@"
    t1=$(date +%s)
    echo "== done in $((t1 - t0))s: $*"
}

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"
export RUSTDOCFLAGS="${RUSTDOCFLAGS:--D warnings}"

run cargo build --release --workspace --all-targets
run cargo test -q --release --workspace
run cargo test -q --release --workspace --doc

# The batch-executor, adaptive no-switch and concurrent-serving
# differential suites run inside the workspace tests above at the default
# batch size and scheduling quantum; run them again at deliberately odd
# sizes so partial final batches, mid-page batch boundaries and
# mid-operator suspension points are exercised too (neither knob may
# change a single charge: a never-switching adaptive run and a
# concurrency-1 served run must stay bit-identical to the static
# executor at any batch size or quantum).
echo "== batch + adaptive + concurrent equivalence at ROBUSTMAP_BATCH_ROWS=513, ROBUSTMAP_QUANTUM=513"
ROBUSTMAP_BATCH_ROWS=513 ROBUSTMAP_QUANTUM=513 run cargo test -q --release \
    --test batch_equivalence --test warm_sweep_equivalence \
    --test adaptive_equivalence --test concurrent_equivalence \
    --test tombstone_equivalence

# Tracing must be charge-free: re-run the same differential suites with a
# process-wide trace sink attached (every session auto-attaches and emits
# page/op/scheduler events).  If observation changes a single charge, the
# bit-identity assertions inside these suites fail.  Full detail =
# per-page events, the worst case.
echo "== the same equivalence suites again, traced (ROBUSTMAP_TRACE, full detail)"
ROBUSTMAP_TRACE="target/trace-verify.json" ROBUSTMAP_TRACE_DETAIL=full run cargo test -q --release \
    --test batch_equivalence --test warm_sweep_equivalence \
    --test adaptive_equivalence --test concurrent_equivalence \
    --test tombstone_equivalence
run cargo clippy --release --workspace --all-targets -- -D warnings
run cargo doc --no-deps --workspace

# The smoke uses a private cache directory so "cold" really is cold no
# matter what earlier builds or tests populated.
SMOKE_CACHE="target/workload-cache-verify"
rm -rf "$SMOKE_CACHE" target/figures-verify

echo "== smoke 1/3: regenerate Figure 1 at reduced scale, COLD workload cache"
ROBUSTMAP_WORKLOAD_CACHE="$SMOKE_CACHE" run cargo run --release -p robustmap-bench --bin figures -- \
    --rows 16384 --grid 8 --out target/figures-verify fig1
test -s target/figures-verify/fig1.csv
test -s target/figures-verify/fig1.svg
test -n "$(ls "$SMOKE_CACHE"/wl-*.bin 2>/dev/null)" || {
    echo "cold run did not populate the workload cache" >&2
    exit 1
}
cp target/figures-verify/fig1.csv target/figures-verify/fig1.cold.csv

echo "== smoke 2/3: same figure, WARM workload cache"
ROBUSTMAP_WORKLOAD_CACHE="$SMOKE_CACHE" run cargo run --release -p robustmap-bench --bin figures -- \
    --rows 16384 --grid 8 --out target/figures-verify fig1
cmp target/figures-verify/fig1.csv target/figures-verify/fig1.cold.csv || {
    echo "warm-cache artifacts differ from cold-cache artifacts" >&2
    exit 1
}
# Byte-identity against the committed baseline: simulated costs must not
# drift, no matter how the executor is rearranged (the batch refactor's
# contract).  Regenerate crates/bench/baselines/fig1_smoke.csv only for
# a deliberate cost-model change.
cmp target/figures-verify/fig1.csv crates/bench/baselines/fig1_smoke.csv || {
    echo "fig1 smoke CSV drifted from the committed baseline — simulated costs changed" >&2
    exit 1
}

echo "== smoke 3/3: sort-spill + correlated + chooser + adaptive + concurrency + trace + churn sweeps, and the regression-check gate"
ROBUSTMAP_WORKLOAD_CACHE="$SMOKE_CACHE" run cargo run --release -p robustmap-bench --bin figures -- \
    --rows 16384 --grid 8 --out target/figures-verify \
    ext_sort_spill ext_correlated ext_optimizer ext_robust_choice ext_adaptive ext_concurrency ext_trace ext_churn ext_regression
test -s target/figures-verify/ext_sort_spill.csv
test -s target/figures-verify/ext_correlated.csv
test -s target/figures-verify/ext_correlated_regret.svg
test -s target/figures-verify/ext_optimizer.csv
test -s target/figures-verify/ext_optimizer_rho1.csv
test -s target/figures-verify/ext_optimizer_joint_regret.svg
test -s target/figures-verify/ext_robust_choice.csv
test -s target/figures-verify/ext_robust_choice_scores.csv
test -s target/figures-verify/ext_robust_choice_robust_regret.svg
test -s target/figures-verify/ext_adaptive.csv
test -s target/figures-verify/ext_adaptive_checks.txt
test -s target/figures-verify/ext_adaptive_regret.svg
test -s target/figures-verify/ext_concurrency.csv
test -s target/figures-verify/ext_concurrency_sweep.csv
test -s target/figures-verify/ext_concurrency_checks.txt
test -s target/figures-verify/ext_concurrency.svg
test -s target/figures-verify/ext_trace.json
test -s target/figures-verify/ext_trace_timeline.svg
test -s target/figures-verify/ext_trace_adaptive.svg
test -s target/figures-verify/ext_trace_ops.csv
test -s target/figures-verify/ext_trace_metrics.txt
test -s target/figures-verify/ext_trace_checks.txt
test -s target/figures-verify/ext_churn.csv
test -s target/figures-verify/ext_churn_checks.txt
test -s target/figures-verify/ext_churn_frozen_regret.svg
test -s target/figures-verify/ext_churn_maint_regret.svg
# The Chrome trace artifact must be loadable JSON (Perfetto/chrome://tracing
# take exactly this shape); validate with python when available.
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
d = json.load(open("target/figures-verify/ext_trace.json"))
evs = d["traceEvents"]
assert evs, "trace has no events"
assert sum(e["ph"] == "B" for e in evs) == sum(e["ph"] == "E" for e in evs), "unbalanced spans"
print(f"== ext_trace.json: {len(evs)} Chrome trace events, spans balanced")
EOF
fi
# The regression gate spans the §4 benchmark (28 checks at the seed), the
# robust-chooser subsystem's named checks (8), the estimator
# comparison's (5), the adaptive executor's (7), the concurrent
# serving layer's (8), the tracing layer's (7) and the churn/statistics
# maintenance subsystem's (8): the combined floor is 71, and every check
# must PASS (the figures binary prints, it does not gate).
checks_reg=$(grep -Eo '^[0-9]+ checks' target/figures-verify/ext_regression.txt | head -1 | cut -d' ' -f1 || true)
checks_robust=$(grep -Eo '^[0-9]+ checks' target/figures-verify/ext_robust_choice_checks.txt | head -1 | cut -d' ' -f1 || true)
checks_opt=$(grep -Eo '^[0-9]+ checks' target/figures-verify/ext_optimizer_checks.txt | head -1 | cut -d' ' -f1 || true)
checks_adapt=$(grep -Eo '^[0-9]+ checks' target/figures-verify/ext_adaptive_checks.txt | head -1 | cut -d' ' -f1 || true)
checks_conc=$(grep -Eo '^[0-9]+ checks' target/figures-verify/ext_concurrency_checks.txt | head -1 | cut -d' ' -f1 || true)
checks_trace=$(grep -Eo '^[0-9]+ checks' target/figures-verify/ext_trace_checks.txt | head -1 | cut -d' ' -f1 || true)
checks_churn=$(grep -Eo '^[0-9]+ checks' target/figures-verify/ext_churn_checks.txt | head -1 | cut -d' ' -f1 || true)
total_checks=$(( ${checks_reg:-0} + ${checks_robust:-0} + ${checks_opt:-0} + ${checks_adapt:-0} + ${checks_conc:-0} + ${checks_trace:-0} + ${checks_churn:-0} ))
if [ "${checks_reg:-0}" -lt 28 ]; then
    echo "regression-check count ${checks_reg:-0} dropped below the seed's 28" >&2
    exit 1
fi
if [ "$total_checks" -lt 71 ]; then
    echo "combined regression-check count $total_checks dropped below the floor of 71" >&2
    exit 1
fi
for report in ext_regression.txt ext_robust_choice_checks.txt ext_optimizer_checks.txt ext_adaptive_checks.txt ext_concurrency_checks.txt ext_trace_checks.txt ext_churn_checks.txt; do
    grep -q 'verdict: PASS' "target/figures-verify/$report" || {
        echo "robustness regression benchmark FAILED ($report):" >&2
        grep '^\[FAIL\]' "target/figures-verify/$report" >&2
        exit 1
    }
done
echo "== regression-check count: $total_checks ($checks_reg + $checks_robust + $checks_opt + $checks_adapt + $checks_conc + $checks_trace + $checks_churn, >= 71), verdicts PASS"
rm -rf "$SMOKE_CACHE"

echo "== deprecated-shim gate: crates/bench must use the Chooser API, not the legacy free functions"
if grep -rnE '\bchoose_plan(_robust|_with_joint)?\s*\(' crates/bench/src; then
    echo "deprecated chooser shim called from crates/bench — migrate to systems::choice::Chooser" >&2
    exit 1
fi

echo "verify: all green"
