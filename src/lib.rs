//! # robustmap
//!
//! A from-scratch reproduction of Graefe, Kuno & Wiener, *Visualizing the
//! robustness of query execution* (CIDR 2009), as a Rust workspace:
//! robustness maps for database query execution, together with the storage
//! engine, executor, workloads and simulated "systems" the maps measure.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`storage`] — slotted pages, heap files, B+-trees, rid bitmaps, buffer
//!   pool, and the deterministic cost model that stands in for hardware;
//! * [`executor`] — physical plans and operators: scans, the three fetch
//!   disciplines of Figure 1, MDAM, index intersection, external sort and
//!   hash aggregation with graceful/abrupt spill modes;
//! * [`workload`] — lineitem-like data generation with exactly calibrated
//!   selectivities;
//! * [`systems`] — the paper's Systems A, B and C as plan repertoires;
//! * [`core`] — the paper's contribution: parameter sweeps, robustness
//!   maps, relative/optimality analysis, color scales and renderers;
//! * [`obs`] — charge-free observability: execution tracing on two
//!   clocks (simulated + real), Chrome trace export, metrics, leveled
//!   logging.
//!
//! ## Quickstart
//!
//! ```
//! use robustmap::core::{build_map1d, Grid1D, MeasureConfig};
//! use robustmap::systems::{single_predicate_plans, SinglePredPlanSet};
//! use robustmap::workload::{TableBuilder, WorkloadConfig};
//!
//! // A small workload (tests use 2^12 rows; figures use 2^20).
//! let w = TableBuilder::build(WorkloadConfig::small());
//! // Figure 1's three plans, swept over selectivities 2^-8 ..= 1.
//! let plans = single_predicate_plans(SinglePredPlanSet::Basic, &w);
//! let map = build_map1d(&w, &plans, &Grid1D::pow2(8), &MeasureConfig::default());
//! // The table scan is flat; the traditional index scan is not.
//! let scan = map.series_named("table scan").unwrap().seconds();
//! assert!(scan.last().unwrap() / scan.first().unwrap() < 1.5);
//! ```

pub use robustmap_core as core;
pub use robustmap_executor as executor;
pub use robustmap_obs as obs;
pub use robustmap_storage as storage;
pub use robustmap_systems as systems;
pub use robustmap_workload as workload;
