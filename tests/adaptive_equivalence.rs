//! Differential no-switch equivalence suite for the adaptive executor.
//!
//! The adaptive layer (`execute_adaptive` and friends) threads cardinality
//! checkpoints through both executors.  Observation must be free: when the
//! controller never switches — whether because it is [`NeverSwitch`] or
//! because it is a real, armed [`BailController`] whose thresholds never
//! trip — the adaptive executor must be **bit-identical** to the static
//! one: same `SimClock` bits (f64 addition is not associative, so this
//! means the exact same charge sequence), same `IoStats`, same spill flag,
//! same per-operator breakdown, and the same output rows in the same
//! order.  This mirrors `tests/batch_equivalence.rs`, which pins the same
//! contract between the row and batch paths; `docs/DESIGN.md` § adaptive
//! execution records the design argument this suite pins.

use robustmap::core::MeasureConfig;
use robustmap::executor::{
    execute_adaptive_collect, execute_adaptive_collect_batched, execute_adaptive_count,
    execute_adaptive_count_batched, execute_collect, execute_collect_batched, execute_count,
    execute_count_batched, AggFn, ColRange, ExecConfig, ExecCtx, ExecStats, FetchKind,
    IndexRangeSpec, IntersectAlgo, JoinAlgo, KeyRange, NeverSwitch, PlanSpec, Predicate,
    Projection, SpillMode, SwitchController,
};
use robustmap::storage::{BufferPool, CostModel, Session};
use robustmap::systems::choice::Exact;
use robustmap::systems::{
    two_pred_bail_controller, two_predicate_plans, BailController, CatalogStats, ChoicePolicy,
    Chooser, Estimator, RobustConfig, SwitchPolicy, SystemId, TwoPredPlan,
};
use robustmap::workload::{TableBuilder, Workload, WorkloadConfig};

fn workload() -> Workload {
    TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 13))
}

fn session(cfg: &MeasureConfig) -> Session {
    Session::new(cfg.model.clone(), BufferPool::new(cfg.pool_pages, cfg.policy))
}

fn full_catalog(w: &Workload) -> Vec<TwoPredPlan> {
    SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, w)).collect()
}

/// Static row path on a fresh session.
fn run_static_row(w: &Workload, spec: &PlanSpec, cfg: &MeasureConfig) -> ExecStats {
    let s = session(cfg);
    let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
    execute_count(spec, &ctx).expect("static row path")
}

/// Static batch path on a fresh session.
fn run_static_batch(
    w: &Workload,
    spec: &PlanSpec,
    cfg: &MeasureConfig,
    ec: &ExecConfig,
) -> ExecStats {
    let s = session(cfg);
    let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
    execute_count_batched(spec, &ctx, ec).expect("static batch path")
}

/// Adaptive row path on a fresh session; asserts nothing switched.
fn run_adaptive_row(
    w: &Workload,
    spec: &PlanSpec,
    cfg: &MeasureConfig,
    ctrl: &dyn SwitchController,
    label: &str,
) -> ExecStats {
    let s = session(cfg);
    let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
    let stats = execute_adaptive_count(spec, &ctx, ctrl).expect("adaptive row path");
    assert!(stats.switches.is_empty(), "{label}: no-switch run recorded a switch");
    stats.exec
}

/// Adaptive batch path on a fresh session; asserts nothing switched.
fn run_adaptive_batch(
    w: &Workload,
    spec: &PlanSpec,
    cfg: &MeasureConfig,
    ec: &ExecConfig,
    ctrl: &dyn SwitchController,
    label: &str,
) -> ExecStats {
    let s = session(cfg);
    let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
    let stats = execute_adaptive_count_batched(spec, &ctx, ec, ctrl).expect("adaptive batch path");
    assert!(stats.switches.is_empty(), "{label}: no-switch run recorded a switch");
    stats.exec
}

/// The equivalence contract, field by field, seconds as raw bits — same
/// shape as `tests/batch_equivalence.rs`.
fn assert_bit_identical(want: &ExecStats, got: &ExecStats, label: &str) {
    assert_eq!(want.rows_out, got.rows_out, "{label}: rows_out");
    assert_eq!(
        want.seconds.to_bits(),
        got.seconds.to_bits(),
        "{label}: simulated seconds diverged ({} vs {})",
        want.seconds,
        got.seconds
    );
    assert_eq!(want.io, got.io, "{label}: IoStats");
    assert_eq!(want.spilled, got.spilled, "{label}: spill flag");
    assert_eq!(want.operators.len(), got.operators.len(), "{label}: operator count");
    for (i, (r, b)) in want.operators.iter().zip(&got.operators).enumerate() {
        assert_eq!(r.label, b.label, "{label}: op #{i} label");
        assert_eq!(r.depth, b.depth, "{label}: op #{i} ({}) depth", r.label);
        assert_eq!(r.rows_out, b.rows_out, "{label}: op #{i} ({}) rows_out", r.label);
        assert_eq!(
            r.seconds.to_bits(),
            b.seconds.to_bits(),
            "{label}: op #{i} ({}) inclusive seconds",
            r.label
        );
    }
}

/// Adaptive (under `ctrl`) vs static, both paths, one spec.
fn assert_adaptive_equivalent(
    w: &Workload,
    spec: &PlanSpec,
    cfg: &MeasureConfig,
    ec: &ExecConfig,
    ctrl: &dyn SwitchController,
    label: &str,
) {
    let row = run_static_row(w, spec, cfg);
    let arow = run_adaptive_row(w, spec, cfg, ctrl, label);
    assert_bit_identical(&row, &arow, &format!("{label} [row]"));
    let batch = run_static_batch(w, spec, cfg, ec);
    let abatch = run_adaptive_batch(w, spec, cfg, ec, ctrl, label);
    assert_bit_identical(&batch, &abatch, &format!("{label} [batch]"));
}

/// Every plan in the catalog — A1–A7, B1–B4, C1–C4 — over a selectivity
/// grid, with switching disabled: the adaptive executor is a drop-in
/// replacement for the static one on both paths.
#[test]
fn all_fifteen_catalog_plans_are_bit_identical_with_switching_disabled() {
    let w = workload();
    let plans = full_catalog(&w);
    assert_eq!(plans.len(), 15, "catalog size changed; update this suite");
    let cfg = MeasureConfig::default();
    let ec = ExecConfig::default();
    let sels = [0.02, 0.3, 0.9];
    for plan in &plans {
        for &sa in &sels {
            for &sb in &sels {
                let spec = plan.build(w.cal_a.threshold(sa), w.cal_b.threshold(sb));
                let label = format!("{} @ ({sa}, {sb})", plan.name);
                assert_adaptive_equivalent(&w, &spec, &cfg, &ec, &NeverSwitch, &label);
            }
        }
    }
}

/// Not just `NeverSwitch`: a *real*, armed [`BailController`] whose
/// thresholds never trip must also be bit-identical — both the degenerate
/// never-trips policy and a live policy built from an actual compile-time
/// choice over accurate estimates (whose credible band therefore holds).
#[test]
fn armed_but_never_tripping_controllers_are_bit_identical() {
    let w = workload();
    let plans = full_catalog(&w);
    let cfg = MeasureConfig::default();
    let ec = ExecConfig::default();
    let stats = CatalogStats::of(&w);
    let model = CostModel::hdd_2009();
    let (ta, tb) = (w.cal_a.threshold(0.2), w.cal_b.threshold(0.6));
    let est = Exact::of(&w).estimate(ta, tb);
    let chooser = Chooser { plans: &plans, stats: &stats, model: &model, policy: ChoicePolicy::Point };
    let choice = chooser.choose_at(&est, ta, tb);
    let fallback = plans
        .iter()
        .find(|p| p.name.contains("mdam"))
        .expect("catalog has an MDAM plan")
        .build(ta, tb);

    for plan in &plans {
        let spec = plan.build(ta, tb);
        // A live controller: credible band from accurate estimates.
        if let Some(ctrl) = two_pred_bail_controller(
            &spec,
            &choice,
            fallback.clone(),
            &stats,
            est,
            &model,
            RobustConfig::default(),
        ) {
            assert_adaptive_equivalent(
                &w,
                &spec,
                &cfg,
                &ec,
                &ctrl,
                &format!("{} [live policy]", plan.name),
            );
            // The degenerate policy: same controller, thresholds at ∞.
            let never = BailController::new(ctrl.at, SwitchPolicy::never(), fallback.clone(), |_| {
                (0.0, 0.0)
            });
            assert_adaptive_equivalent(
                &w,
                &spec,
                &cfg,
                &ec,
                &never,
                &format!("{} [never-trips policy]", plan.name),
            );
        } else {
            assert_adaptive_equivalent(&w, &spec, &cfg, &ec, &NeverSwitch, &plan.name);
        }
    }
}

/// Batch size must never be observable through the adaptive layer either.
#[test]
fn batch_size_is_not_observable_under_adaptive_execution() {
    let w = workload();
    let cfg = MeasureConfig::default();
    let plans = full_catalog(&w);
    let (ta, tb) = (w.cal_a.threshold(0.2), w.cal_b.threshold(0.6));
    for plan in &plans {
        let spec = plan.build(ta, tb);
        let row = run_static_row(&w, &spec, &cfg);
        for batch_rows in [1usize, 513, 1 << 20] {
            let ec = ExecConfig::with_batch_rows(batch_rows);
            let label = format!("{} @ batch {batch_rows}", plan.name);
            let abatch = run_adaptive_batch(&w, &spec, &cfg, &ec, &NeverSwitch, &label);
            assert_bit_identical(&row, &abatch, &label);
        }
    }
}

/// The composite shapes beyond the two-predicate catalog: joins on both
/// build sides with in-memory and spilling grants, sort and aggregation in
/// both spill modes, parallel scans, the traditional fetch, and the
/// covering rid join — every checkpointed and delegated arm of the
/// adaptive drivers.
#[test]
fn composite_operators_are_bit_identical_with_switching_disabled() {
    let w = workload();
    let cfg = MeasureConfig::default();
    let ec = ExecConfig::default();
    let idx = w.indexes;
    let ta = w.cal_a.threshold(0.15);
    let tb = w.cal_b.threshold(0.4);

    let scan_a = |hi: i64| PlanSpec::TableScan {
        table: w.table,
        pred: Predicate::single(ColRange::at_most(0, hi)),
        project: Projection::Columns(vec![0, 3]),
    };
    let covering_b = PlanSpec::CoveringIndexScan {
        scan: IndexRangeSpec { index: idx.ba, range: KeyRange::on_leading(i64::MIN, tb, 2) },
        residual: Predicate::always_true(),
        project: Projection::All,
    };

    let mut specs: Vec<(String, PlanSpec)> = Vec::new();
    for (name, algo) in [
        ("sort-merge", JoinAlgo::SortMerge),
        ("hash/build-left", JoinAlgo::Hash { build_left: true }),
        ("hash/build-right", JoinAlgo::Hash { build_left: false }),
    ] {
        for memory_bytes in [1 << 14, 8 << 20] {
            specs.push((
                format!("join {name} mem={memory_bytes}"),
                PlanSpec::Join {
                    left: Box::new(scan_a(ta)),
                    right: Box::new(covering_b.clone()),
                    left_key: 1,
                    right_key: 1,
                    algo,
                    memory_bytes,
                    project: Projection::Columns(vec![0, 2, 3]),
                },
            ));
        }
    }
    for mode in [SpillMode::Abrupt, SpillMode::Graceful] {
        for memory_bytes in [4096usize, 8 << 20] {
            specs.push((
                format!("sort {mode:?} mem={memory_bytes}"),
                PlanSpec::Sort {
                    input: Box::new(scan_a(w.cal_a.threshold(0.5))),
                    key_cols: vec![1],
                    mode,
                    memory_bytes,
                },
            ));
            specs.push((
                format!("hashagg {mode:?} mem={memory_bytes}"),
                PlanSpec::HashAgg {
                    input: Box::new(PlanSpec::TableScan {
                        table: w.table,
                        pred: Predicate::single(ColRange::at_most(1, tb)),
                        project: Projection::All,
                    }),
                    group_cols: vec![2],
                    aggs: vec![AggFn::CountStar, AggFn::Sum(3), AggFn::Min(0), AggFn::Max(1)],
                    mode,
                    memory_bytes,
                },
            ));
        }
    }
    for (dop, skew_permille) in [(4, 0), (8, 1000)] {
        specs.push((
            format!("parallel scan dop={dop} skew={skew_permille}"),
            PlanSpec::ParallelTableScan {
                table: w.table,
                pred: Predicate::all_of(vec![ColRange::at_most(0, ta), ColRange::at_most(1, tb)]),
                project: Projection::Columns(vec![3, 0]),
                dop,
                skew_permille,
            },
        ));
    }
    specs.push((
        "traditional fetch".to_string(),
        PlanSpec::IndexFetch {
            scan: IndexRangeSpec {
                index: idx.a,
                range: KeyRange::on_leading(i64::MIN, w.cal_a.threshold(0.05), 1),
            },
            key_filter: Predicate::always_true(),
            fetch: FetchKind::Traditional,
            residual: Predicate::single(ColRange::at_most(1, tb)),
            project: Projection::Columns(vec![1, 4]),
        },
    ));
    specs.push((
        "covering rid join hash/build-right".to_string(),
        PlanSpec::CoveringRidJoin {
            left: IndexRangeSpec { index: idx.a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
            right: IndexRangeSpec { index: idx.b, range: KeyRange::on_leading(i64::MIN, tb, 1) },
            algo: IntersectAlgo::HashJoin { build_left: false },
            project: Projection::Columns(vec![1, 0]),
        },
    ));

    for (label, spec) in &specs {
        assert_adaptive_equivalent(&w, spec, &cfg, &ec, &NeverSwitch, label);
    }
}

/// Beyond the counters: the rows themselves — values and order — must
/// match the static executor's on both paths, including an empty result.
#[test]
fn collected_rows_match_static_executor_exactly() {
    let w = workload();
    let cfg = MeasureConfig::default();
    let specs = [
        PlanSpec::IndexIntersect {
            left: IndexRangeSpec {
                index: w.indexes.a,
                range: KeyRange::on_leading(i64::MIN, w.cal_a.threshold(0.13), 1),
            },
            right: IndexRangeSpec {
                index: w.indexes.b,
                range: KeyRange::on_leading(i64::MIN, w.cal_b.threshold(0.4), 1),
            },
            algo: IntersectAlgo::MergeJoin,
            fetch: FetchKind::BitmapSorted,
            residual: Predicate::always_true(),
            project: Projection::Columns(vec![4, 0, 2]),
        },
        // Empty result.
        PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::between(0, 5, 4)),
            project: Projection::All,
        },
        PlanSpec::Mdam {
            index: w.indexes.ab,
            col_ranges: vec![
                (i64::MIN, w.cal_a.threshold(0.3)),
                (i64::MIN, w.cal_b.threshold(0.1)),
            ],
            project: Projection::Columns(vec![1]),
        },
    ];
    for (i, spec) in specs.iter().enumerate() {
        let (row_stats, row_rows) = {
            let s = session(&cfg);
            let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
            execute_collect(spec, &ctx).expect("static collect")
        };
        let (astats, arows) = {
            let s = session(&cfg);
            let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
            execute_adaptive_collect(spec, &ctx, &NeverSwitch).expect("adaptive collect")
        };
        assert_bit_identical(&row_stats, &astats.exec, &format!("collect #{i} [row]"));
        assert_eq!(row_rows, arows, "collect #{i} [row]: rows/order");
        for batch_rows in [1usize, 100, 1024] {
            let ec = ExecConfig::with_batch_rows(batch_rows);
            let (bstats, brows) = {
                let s = session(&cfg);
                let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
                execute_collect_batched(spec, &ctx, &ec).expect("static batch collect")
            };
            let (abstats, abrows) = {
                let s = session(&cfg);
                let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
                execute_adaptive_collect_batched(spec, &ctx, &ec, &NeverSwitch)
                    .expect("adaptive batch collect")
            };
            assert_bit_identical(&bstats, &abstats.exec, &format!("collect #{i} [batch]"));
            assert_eq!(brows, abrows, "collect #{i} @ batch {batch_rows}: rows/order");
        }
    }
}
