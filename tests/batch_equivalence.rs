//! Differential equivalence suite for the batched executor.
//!
//! The batch path (`execute_count_batched` and friends) pushes ~1024-row
//! columnar chunks instead of single rows, but its *simulated* behaviour
//! must be indistinguishable from the row path's: the `SimClock`
//! accumulates `f64` charges whose addition is not associative, so "equal"
//! here means **bit-identical** elapsed seconds, identical I/O counters,
//! identical row counts and spill flags, and an identical per-operator
//! breakdown.  Every plan in the three-system catalog (15 plans) is
//! checked over a selectivity grid and several batch sizes, and the
//! composite operators (joins, sort, aggregation, parallel scan) get
//! dedicated coverage.  `docs/DESIGN.md` records the design argument;
//! this suite pins it.

use robustmap::core::MeasureConfig;
use robustmap::executor::{
    execute_collect, execute_collect_batched, execute_count, execute_count_batched, AggFn,
    ColRange, ExecConfig, ExecCtx, ExecStats, FetchKind, IndexRangeSpec, IntersectAlgo, JoinAlgo,
    KeyRange, PlanSpec, Predicate, Projection, SpillMode,
};
use robustmap::storage::{BufferPool, Row, Session};
use robustmap::systems::{two_predicate_plans, SystemId, TwoPredPlan};
use robustmap::workload::{TableBuilder, Workload, WorkloadConfig};

fn workload() -> Workload {
    TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 13))
}

fn session(cfg: &MeasureConfig) -> Session {
    Session::new(cfg.model.clone(), BufferPool::new(cfg.pool_pages, cfg.policy))
}

/// Execute `spec` on a fresh session through the row-at-a-time path.
fn run_row(w: &Workload, spec: &PlanSpec, cfg: &MeasureConfig) -> ExecStats {
    let s = session(cfg);
    let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
    execute_count(spec, &ctx).expect("row path: well-formed plan")
}

/// Execute `spec` on a fresh session through the batched path.
fn run_batch(w: &Workload, spec: &PlanSpec, cfg: &MeasureConfig, ec: &ExecConfig) -> ExecStats {
    let s = session(cfg);
    let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
    execute_count_batched(spec, &ctx, ec).expect("batch path: well-formed plan")
}

/// The equivalence contract, asserted field by field so a divergence names
/// exactly what broke.  Seconds are compared as raw bits: `f64` addition is
/// not associative, so anything short of replaying the row path's exact
/// charge sequence shows up here.
fn assert_bit_identical(row: &ExecStats, batch: &ExecStats, label: &str) {
    assert_eq!(row.rows_out, batch.rows_out, "{label}: rows_out");
    assert_eq!(
        row.seconds.to_bits(),
        batch.seconds.to_bits(),
        "{label}: simulated seconds diverged ({} vs {})",
        row.seconds,
        batch.seconds
    );
    assert_eq!(row.io, batch.io, "{label}: IoStats");
    assert_eq!(row.spilled, batch.spilled, "{label}: spill flag");
    assert_eq!(row.operators.len(), batch.operators.len(), "{label}: operator count");
    for (i, (r, b)) in row.operators.iter().zip(&batch.operators).enumerate() {
        assert_eq!(r.label, b.label, "{label}: op #{i} label");
        assert_eq!(r.depth, b.depth, "{label}: op #{i} ({}) depth", r.label);
        assert_eq!(r.rows_out, b.rows_out, "{label}: op #{i} ({}) rows_out", r.label);
        assert_eq!(
            r.seconds.to_bits(),
            b.seconds.to_bits(),
            "{label}: op #{i} ({}) inclusive seconds",
            r.label
        );
    }
}

fn assert_equivalent(w: &Workload, spec: &PlanSpec, cfg: &MeasureConfig, ec: &ExecConfig, label: &str) {
    let row = run_row(w, spec, cfg);
    let batch = run_batch(w, spec, cfg, ec);
    assert_bit_identical(&row, &batch, label);
}

/// Every plan in the catalog — A1–A7, B1–B4, C1–C4 — over a selectivity
/// grid, at the default batch size.  This is the suite's core claim: the
/// batch executor is a drop-in replacement for sweeps over the full
/// catalog.
#[test]
fn all_fifteen_catalog_plans_are_bit_identical() {
    let w = workload();
    let plans: Vec<TwoPredPlan> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, &w)).collect();
    assert_eq!(plans.len(), 15, "catalog size changed; update this suite");
    let cfg = MeasureConfig::default();
    let ec = ExecConfig::default();
    let sels = [0.02, 0.3, 0.9];
    for plan in &plans {
        for &sa in &sels {
            for &sb in &sels {
                let spec = plan.build(w.cal_a.threshold(sa), w.cal_b.threshold(sb));
                let label = format!("{} @ ({sa}, {sb})", plan.name);
                assert_equivalent(&w, &spec, &cfg, &ec, &label);
            }
        }
    }
}

/// Batch size must never be observable: size 1 (degenerate), a
/// non-power-of-two that never divides the result evenly, and a size far
/// larger than any intermediate result all produce the same bits.
#[test]
fn batch_size_is_not_observable() {
    let w = workload();
    let cfg = MeasureConfig::default();
    let plans: Vec<TwoPredPlan> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, &w)).collect();
    let (ta, tb) = (w.cal_a.threshold(0.2), w.cal_b.threshold(0.6));
    for plan in &plans {
        let spec = plan.build(ta, tb);
        let row = run_row(&w, &spec, &cfg);
        for batch_rows in [1usize, 513, 1 << 20] {
            let ec = ExecConfig::with_batch_rows(batch_rows);
            let batch = run_batch(&w, &spec, &cfg, &ec);
            assert_bit_identical(&row, &batch, &format!("{} @ batch {batch_rows}", plan.name));
        }
    }
}

/// The composite operators the two-predicate catalog exercises only
/// partially: both join algorithms on both build sides, sort and hash
/// aggregation in both spill modes (in-memory and spilling grants), the
/// parallel scan with and without skew, and the traditional fetch
/// discipline.
#[test]
fn composite_operators_are_bit_identical() {
    let w = workload();
    let cfg = MeasureConfig::default();
    let ec = ExecConfig::default();
    let idx = w.indexes;
    let ta = w.cal_a.threshold(0.15);
    let tb = w.cal_b.threshold(0.4);

    let scan_a = |hi: i64| PlanSpec::TableScan {
        table: w.table,
        pred: Predicate::single(ColRange::at_most(0, hi)),
        project: Projection::Columns(vec![0, 3]),
    };
    let covering_b = PlanSpec::CoveringIndexScan {
        scan: IndexRangeSpec { index: idx.ba, range: KeyRange::on_leading(i64::MIN, tb, 2) },
        residual: Predicate::always_true(),
        project: Projection::All,
    };

    let mut specs: Vec<(String, PlanSpec)> = Vec::new();
    for (name, algo) in [
        ("sort-merge", JoinAlgo::SortMerge),
        ("hash/build-left", JoinAlgo::Hash { build_left: true }),
        ("hash/build-right", JoinAlgo::Hash { build_left: false }),
    ] {
        for memory_bytes in [1 << 14, 8 << 20] {
            specs.push((
                format!("join {name} mem={memory_bytes}"),
                PlanSpec::Join {
                    left: Box::new(scan_a(ta)),
                    right: Box::new(covering_b.clone()),
                    left_key: 1,  // orderkey in the scan's projection
                    right_key: 1, // a in the (b, a) covering output
                    algo,
                    memory_bytes,
                    project: Projection::Columns(vec![0, 2, 3]),
                },
            ));
        }
    }
    for mode in [SpillMode::Abrupt, SpillMode::Graceful] {
        for memory_bytes in [4096usize, 8 << 20] {
            specs.push((
                format!("sort {mode:?} mem={memory_bytes}"),
                PlanSpec::Sort {
                    input: Box::new(scan_a(w.cal_a.threshold(0.5))),
                    key_cols: vec![1],
                    mode,
                    memory_bytes,
                },
            ));
            specs.push((
                format!("hashagg {mode:?} mem={memory_bytes}"),
                PlanSpec::HashAgg {
                    input: Box::new(PlanSpec::TableScan {
                        table: w.table,
                        pred: Predicate::single(ColRange::at_most(1, tb)),
                        project: Projection::All,
                    }),
                    group_cols: vec![2],
                    aggs: vec![AggFn::CountStar, AggFn::Sum(3), AggFn::Min(0), AggFn::Max(1)],
                    mode,
                    memory_bytes,
                },
            ));
        }
    }
    for (dop, skew_permille) in [(1, 0), (4, 0), (4, 250), (8, 1000)] {
        specs.push((
            format!("parallel scan dop={dop} skew={skew_permille}"),
            PlanSpec::ParallelTableScan {
                table: w.table,
                pred: Predicate::all_of(vec![
                    ColRange::at_most(0, ta),
                    ColRange::at_most(1, tb),
                ]),
                project: Projection::Columns(vec![3, 0]),
                dop,
                skew_permille,
            },
        ));
    }
    specs.push((
        "traditional fetch".to_string(),
        PlanSpec::IndexFetch {
            scan: IndexRangeSpec {
                index: idx.a,
                range: KeyRange::on_leading(i64::MIN, w.cal_a.threshold(0.05), 1),
            },
            key_filter: Predicate::always_true(),
            fetch: FetchKind::Traditional,
            residual: Predicate::single(ColRange::at_most(1, tb)),
            project: Projection::Columns(vec![1, 4]),
        },
    ));
    specs.push((
        "covering rid join hash/build-right".to_string(),
        PlanSpec::CoveringRidJoin {
            left: IndexRangeSpec { index: idx.a, range: KeyRange::on_leading(i64::MIN, ta, 1) },
            right: IndexRangeSpec { index: idx.b, range: KeyRange::on_leading(i64::MIN, tb, 1) },
            algo: IntersectAlgo::HashJoin { build_left: false },
            project: Projection::Columns(vec![1, 0]),
        },
    ));

    for (label, spec) in &specs {
        assert_equivalent(&w, spec, &cfg, &ec, label);
    }
}

/// Beyond the counters: the *rows themselves* — values and order — must
/// match, including when the result size is not a multiple of the batch
/// size and when the result is empty.
#[test]
fn collected_rows_match_row_path_exactly() {
    let w = workload();
    let cfg = MeasureConfig::default();
    let specs = [
        // 0.13 of 8192 rows: not a multiple of any power-of-two batch.
        PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(0, w.cal_a.threshold(0.13))),
            project: Projection::Columns(vec![4, 0, 2]),
        },
        // Empty result.
        PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::between(0, 5, 4)),
            project: Projection::All,
        },
        PlanSpec::Mdam {
            index: w.indexes.ab,
            col_ranges: vec![(i64::MIN, w.cal_a.threshold(0.3)), (i64::MIN, w.cal_b.threshold(0.1))],
            project: Projection::Columns(vec![1]),
        },
    ];
    for (i, spec) in specs.iter().enumerate() {
        let (row_stats, row_rows): (ExecStats, Vec<Row>) = {
            let s = session(&cfg);
            let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
            execute_collect(spec, &ctx).expect("row collect")
        };
        for batch_rows in [1usize, 100, 1024] {
            let ec = ExecConfig::with_batch_rows(batch_rows);
            let (batch_stats, batch_rows_v): (ExecStats, Vec<Row>) = {
                let s = session(&cfg);
                let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
                execute_collect_batched(spec, &ctx, &ec).expect("batch collect")
            };
            assert_bit_identical(&row_stats, &batch_stats, &format!("collect #{i}"));
            assert_eq!(row_rows, batch_rows_v, "collect #{i} @ batch {batch_rows}: rows/order");
        }
    }
}
