//! The workload cache's correctness contract: a cache-hit workload and a
//! freshly generated one are indistinguishable — not just row-for-row,
//! but *measurement*-for-measurement.  Robustness maps built from both
//! must be identical cell-for-cell, because the cache round-trips heap
//! pages byte-for-byte and re-bulk-loads indexes into the exact node
//! layout the builder produced (see `crates/workload/src/cache.rs` and
//! `docs/DESIGN.md`).

use robustmap::core::{build_map1d, build_map2d, Grid1D, Grid2D, MeasureConfig};
use robustmap::systems::{
    single_predicate_plans, two_predicate_plans, SinglePredPlanSet, SystemId,
};
use robustmap::workload::cache;
use robustmap::workload::gen::PredicateDistribution;
use robustmap::workload::{TableBuilder, Workload, WorkloadConfig};

/// A config no other test uses, so this test owns its cache file.
fn private_config() -> WorkloadConfig {
    WorkloadConfig {
        rows: 1 << 12,
        seed: 0xD15E_A5ED_CAFE,
        predicate_dist: PredicateDistribution::Permutation,
        mutation_epoch: 0,
    }
}

fn maps_of(w: &Workload, threads: usize) -> (robustmap::core::Map1D, robustmap::core::Map2D) {
    let cfg = MeasureConfig { threads, ..Default::default() };
    let plans1 = single_predicate_plans(SinglePredPlanSet::WithIndexJoins, w);
    let map1 = build_map1d(w, &plans1, &Grid1D::pow2(4), &cfg);
    let plans2: Vec<_> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, w)).collect();
    let map2 = build_map2d(w, &plans2, &Grid2D::pow2(3), &cfg);
    (map1, map2)
}

#[test]
fn cache_hit_measures_identically_to_fresh_build() {
    let config = private_config();
    let fresh = TableBuilder::build(config.clone());
    cache::store(&fresh);
    let Some(path) = cache::cache_path(&config) else {
        // Caching disabled in this environment (ROBUSTMAP_WORKLOAD_CACHE=off):
        // nothing to compare against.
        return;
    };
    assert!(path.exists(), "store must have written {}", path.display());
    let loaded = cache::load(&config).expect("stored workload must load");

    // Same maps, whichever workload and whichever thread count built them.
    let (fresh1, fresh2) = maps_of(&fresh, 1);
    for threads in [1, 4] {
        let (hit1, hit2) = maps_of(&loaded, threads);
        assert_eq!(fresh1, hit1, "1-D map diverged (threads={threads})");
        assert_eq!(fresh2, hit2, "2-D map diverged (threads={threads})");
    }

    // And a second fresh build agrees too (generation itself is
    // deterministic; the cache adds no wobble on either side).
    let rebuilt = TableBuilder::build(config);
    let (re1, re2) = maps_of(&rebuilt, 1);
    assert_eq!(fresh1, re1);
    assert_eq!(fresh2, re2);

    let _ = std::fs::remove_file(path);
}

#[test]
fn correlated_column_survives_the_cache_bit_identically() {
    // `dist::Correlated` draws are a pure function of (seed, row) — not of
    // generation call order — so a correlated workload must round-trip the
    // cache with byte-identical heap pages and rebuild identically from
    // scratch.  (A call-order-dependent generator would pass neither under
    // reordering; this pins the purity fix.)
    let config = WorkloadConfig {
        rows: 1 << 12,
        seed: 0xC0_55E1A7ED,
        predicate_dist: PredicateDistribution::CorrelatedHundredths(60),
        mutation_epoch: 0,
    };
    let fresh = TableBuilder::build(config.clone());
    cache::store(&fresh);
    let Some(path) = cache::cache_path(&config) else { return };
    assert!(path.exists(), "store must have written {}", path.display());
    let loaded = cache::load(&config).expect("stored workload must load");
    let rebuilt = TableBuilder::build(config);

    let h1 = &fresh.db.table(fresh.table).heap;
    let h2 = &loaded.db.table(loaded.table).heap;
    let h3 = &rebuilt.db.table(rebuilt.table).heap;
    assert_eq!(h1.page_count(), h2.page_count());
    assert_eq!(h1.page_count(), h3.page_count());
    for p in 0..h1.page_count() {
        let bytes = h1.page(p).unwrap().as_bytes();
        assert_eq!(
            bytes.as_slice(),
            h2.page(p).unwrap().as_bytes().as_slice(),
            "cache round-trip diverged on heap page {p}"
        );
        assert_eq!(
            bytes.as_slice(),
            h3.page(p).unwrap().as_bytes().as_slice(),
            "rebuild diverged on heap page {p}"
        );
    }
    // The measurement contract holds for the correlated family too.
    let (fresh1, fresh2) = maps_of(&fresh, 1);
    let (hit1, hit2) = maps_of(&loaded, 4);
    assert_eq!(fresh1, hit1);
    assert_eq!(fresh2, hit2);

    let _ = std::fs::remove_file(path);
}

#[test]
fn joint_statistics_ride_the_cache_bit_identically() {
    // The statistics cache shares the workload cache's directory, format
    // conventions and determinism contract: a cache-hit JointHistogram is
    // field-for-field identical to a fresh build, whichever workload copy
    // (fresh, cached, rebuilt) it was sampled from.
    use robustmap::workload::{stats, JointHistogram, JointHistogramConfig};
    let config = WorkloadConfig {
        rows: 1 << 12,
        seed: 0x107_57A75,
        predicate_dist: PredicateDistribution::CorrelatedHundredths(70),
        mutation_epoch: 0,
    };
    let jcfg = JointHistogramConfig { sample_target: 1 << 10, ..Default::default() };
    let Some(stats_path) = stats::stats_cache_path(&config, &jcfg) else { return };
    let _ = std::fs::remove_file(&stats_path);

    let fresh = TableBuilder::build(config.clone());
    let built = JointHistogram::build_cached(&fresh, &jcfg);
    assert!(stats_path.exists(), "miss must populate the statistics cache");

    // Served from the cache — and from a *workload-cache* round-tripped
    // workload — the statistics are identical.
    cache::store(&fresh);
    let loaded_workload = cache::load(&config).expect("stored workload must load");
    let hit = JointHistogram::build_cached(&loaded_workload, &jcfg);
    assert_eq!(built, hit);
    let scratch = JointHistogram::from_workload(&TableBuilder::build(config.clone()), &jcfg);
    assert_eq!(built, scratch);

    let _ = std::fs::remove_file(stats_path);
    if let Some(p) = cache::cache_path(&config) {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn build_cached_roundtrips_through_the_cache() {
    let mut config = private_config();
    config.seed ^= 1; // own cache file, distinct from the test above
    let Some(path) = cache::cache_path(&config) else { return };
    let _ = std::fs::remove_file(&path);

    // Miss: builds and stores.
    let first = TableBuilder::build_cached(config.clone());
    assert!(path.exists(), "miss must populate the cache");
    // Hit: loads the stored bytes.
    let second = TableBuilder::build_cached(config);
    assert_eq!(first.rows(), second.rows());
    let (m1a, m1b) = maps_of(&first, 1);
    let (m2a, m2b) = maps_of(&second, 1);
    assert_eq!(m1a, m2a);
    assert_eq!(m1b, m2b);

    let _ = std::fs::remove_file(path);
}

#[test]
fn churn_cannot_be_served_poisoned_statistics() {
    // The poisoning scenario the mutation epoch exists to kill: statistics
    // are cached content-addressed by `WorkloadConfig`, and before the
    // epoch existed a table mutated in place still *had* its pristine
    // config — so a lookup after churn would happily serve the frozen
    // pre-churn histogram as if it were fresh.  Every mutation batch bumps
    // `mutation_epoch`, which feeds both the workload and statistics cache
    // keys; this test pins the whole chain.
    use robustmap::storage::Session;
    use robustmap::workload::{
        stats, ChurnConfig, ChurnDriver, JointHistogram, JointHistogramConfig,
    };
    let config = WorkloadConfig {
        rows: 1 << 12,
        seed: 0x9015_0A7CE,
        predicate_dist: PredicateDistribution::CorrelatedHundredths(70),
        mutation_epoch: 0,
    };
    let jcfg = JointHistogramConfig { sample_target: 1 << 10, ..Default::default() };
    let Some(pristine_path) = stats::stats_cache_path(&config, &jcfg) else { return };
    let _ = std::fs::remove_file(&pristine_path);

    let mut w = TableBuilder::build(config.clone());
    let pristine = JointHistogram::build_cached(&w, &jcfg);
    assert!(pristine_path.exists(), "epoch-0 statistics must be cached");

    // Mutate the table: heavy drift so the poisoned entry is not merely
    // stale but *wrong* where it matters.
    let mut driver = ChurnDriver::new(&w, ChurnConfig::for_workload(&w).with_drift_down(85));
    let session = Session::with_pool_pages(64);
    driver.apply_until_fraction(&mut w, &session, 0.3);
    assert!(w.config.mutation_epoch > 0, "churn must bump the mutation epoch");

    // The mutated config addresses a *different* cache slot, so the
    // frozen entry is unreachable: the first post-churn lookup misses.
    let churned_path = stats::stats_cache_path(&w.config, &jcfg);
    assert_ne!(
        churned_path.as_ref(),
        Some(&pristine_path),
        "mutated config must not address the pre-churn cache entry"
    );
    assert!(
        stats::load(&w.config, &jcfg).is_none(),
        "post-churn lookup served a cache entry that cannot exist yet"
    );

    // A rebuild through the caching entry point sees the churned table,
    // not the tombstoned past: it differs from the frozen histogram and
    // round-trips its own slot.
    let rebuilt = JointHistogram::build_cached(&w, &jcfg);
    assert_ne!(rebuilt, pristine, "churned statistics must differ from frozen ones");
    assert_eq!(stats::load(&w.config, &jcfg).expect("rebuild must cache"), rebuilt);

    // The pristine entry itself is untouched — epoch keying isolates, it
    // does not invalidate.
    assert_eq!(stats::load(&config, &jcfg).expect("epoch-0 entry intact"), pristine);

    let _ = std::fs::remove_file(pristine_path);
    if let Some(p) = churned_path {
        let _ = std::fs::remove_file(p);
    }
    if let Some(p) = cache::cache_path(&config) {
        let _ = std::fs::remove_file(p);
    }
}
