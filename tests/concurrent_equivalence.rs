//! Differential equivalence suite for concurrent serving.
//!
//! `core::serve_concurrent` interleaves N queries over one shared buffer
//! pool with a deterministic round-robin scheduler.  This suite pins the
//! three contracts that make that serving layer trustworthy:
//!
//! 1. **Concurrency 1 is bit-identical to the static executor.**  A burst
//!    of one — and a serialized burst at `max_in_flight = 1` — must
//!    reproduce today's isolated measurements exactly: `to_bits()`-equal
//!    seconds, equal [`IoStats`], equal per-operator breakdowns, across
//!    the whole 15-plan catalog.
//! 2. **Slicing is unobservable in total work.**  Page requests never
//!    branch on hit/miss, so rows, compares, hashes, page requests and
//!    page writes are invariant under any quantum — only the hit/miss
//!    split and simulated seconds may shift with contention.
//! 3. **Serving is deterministic and accountable.**  Rerunning a burst
//!    reproduces every bit; per-query pool shares partition the pool's
//!    counters; admission is FIFO and starvation-free; shrunk grants
//!    force spills.
//!
//! `scripts/verify.sh` re-runs this suite with `ROBUSTMAP_QUANTUM=513`
//! (and an odd batch size) to prove the contracts hold at a quantum that
//! never divides anything evenly.

use robustmap::core::{serve_concurrent, MeasureConfig, ServeConfig};
use robustmap::executor::{
    execute_count, execute_count_batched, ColRange, ExecConfig, ExecCtx, ExecStats, PlanSpec,
    Predicate, Projection, SpillMode,
};
use robustmap::storage::{BufferPool, IoStats, Session};
use robustmap::systems::{two_predicate_plans, AdmissionConfig, SystemId, TwoPredPlan};
use robustmap::workload::{TableBuilder, Workload, WorkloadConfig};

fn workload() -> Workload {
    TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 13))
}

fn catalog(w: &Workload) -> Vec<TwoPredPlan> {
    let plans: Vec<TwoPredPlan> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, w)).collect();
    assert_eq!(plans.len(), 15, "catalog size changed; update this suite");
    plans
}

/// The serving config whose isolated-query behaviour must match
/// [`MeasureConfig::default`]: same pool, same policy, same model, same
/// per-query grant.  Quantum comes from the environment so verify.sh can
/// re-run the suite at an odd slice size.
fn serve_cfg() -> ServeConfig {
    ServeConfig::from_env()
}

fn run_row(w: &Workload, spec: &PlanSpec, cfg: &MeasureConfig) -> ExecStats {
    let s = Session::new(cfg.model.clone(), BufferPool::new(cfg.pool_pages, cfg.policy));
    let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
    execute_count(spec, &ctx).expect("row path: well-formed plan")
}

fn run_batch(w: &Workload, spec: &PlanSpec, cfg: &MeasureConfig) -> ExecStats {
    let s = Session::new(cfg.model.clone(), BufferPool::new(cfg.pool_pages, cfg.policy));
    let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
    execute_count_batched(spec, &ctx, &ExecConfig::from_env()).expect("batch path: well-formed")
}

/// The full bit-identity contract, field by field (same shape as
/// `tests/batch_equivalence.rs` so a divergence names what broke).
fn assert_bit_identical(a: &ExecStats, b: &ExecStats, label: &str) {
    assert_eq!(a.rows_out, b.rows_out, "{label}: rows_out");
    assert_eq!(
        a.seconds.to_bits(),
        b.seconds.to_bits(),
        "{label}: simulated seconds diverged ({} vs {})",
        a.seconds,
        b.seconds
    );
    assert_eq!(a.io, b.io, "{label}: IoStats");
    assert_eq!(a.spilled, b.spilled, "{label}: spill flag");
    assert_eq!(a.operators.len(), b.operators.len(), "{label}: operator count");
    for (i, (x, y)) in a.operators.iter().zip(&b.operators).enumerate() {
        assert_eq!(x.label, y.label, "{label}: op #{i} label");
        assert_eq!(x.depth, y.depth, "{label}: op #{i} ({}) depth", x.label);
        assert_eq!(x.rows_out, y.rows_out, "{label}: op #{i} ({}) rows_out", x.label);
        assert_eq!(
            x.seconds.to_bits(),
            y.seconds.to_bits(),
            "{label}: op #{i} ({}) inclusive seconds",
            x.label
        );
    }
}

/// The interleaving-invariant part of the work: everything except the
/// hit/miss split and the seconds derived from it.
fn work_signature(io: &IoStats) -> (u64, u64, u64, u64, u64) {
    (io.page_requests(), io.page_writes, io.cpu_rows, io.cpu_compares, io.cpu_hashes)
}

/// A full-table sort whose spill behaviour is controlled by
/// `memory_bytes`.
fn sort_spec(w: &Workload, memory_bytes: usize) -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(0, w.cal_a.threshold(1.0))),
            project: Projection::All,
        }),
        key_cols: vec![1],
        mode: SpillMode::Abrupt,
        memory_bytes,
    }
}

/// Satellite (c): a burst of one is bit-identical — seconds bits, I/O,
/// per-operator stats — to both static executors, for every plan in the
/// three-system catalog.
#[test]
fn concurrency_one_matches_static_executor_across_catalog() {
    let w = workload();
    let mcfg = MeasureConfig::default();
    let scfg = serve_cfg();
    for plan in &catalog(&w) {
        for (sa, sb) in [(0.05, 0.4), (0.7, 0.9)] {
            let spec = plan.build(w.cal_a.threshold(sa), w.cal_b.threshold(sb));
            let label = format!("{} @ ({sa}, {sb})", plan.name);
            let row = run_row(&w, &spec, &mcfg);
            let batch = run_batch(&w, &spec, &mcfg);
            let report = serve_concurrent(&w.db, std::slice::from_ref(&spec), &scfg);
            assert_bit_identical(&row, &report.queries[0].stats, &format!("{label} vs row"));
            assert_bit_identical(&batch, &report.queries[0].stats, &format!("{label} vs batch"));
            assert_eq!(report.queries[0].grant, mcfg.memory_bytes, "{label}: grant");
        }
    }
}

/// A whole-catalog burst served at `max_in_flight = 1` is a sequence of
/// isolated cold-pool measurements: the idle reset between queries makes
/// each one bit-identical to its static counterpart.
#[test]
fn sequential_burst_matches_static_per_query() {
    let w = workload();
    let mcfg = MeasureConfig::default();
    let mut scfg = serve_cfg();
    scfg.admission = AdmissionConfig { max_in_flight: 1, ..AdmissionConfig::default() };
    let plans = catalog(&w);
    let specs: Vec<PlanSpec> =
        plans.iter().map(|p| p.build(w.cal_a.threshold(0.15), w.cal_b.threshold(0.4))).collect();
    let report = serve_concurrent(&w.db, &specs, &scfg);
    assert_eq!(report.admission_order, (0..15).collect::<Vec<_>>());
    assert_eq!(report.completion_order, (0..15).collect::<Vec<_>>());
    assert_eq!(report.idle_resets, 14, "one cold reset between each pair of queries");
    for (i, (plan, spec)) in plans.iter().zip(&specs).enumerate() {
        let isolated = run_batch(&w, spec, &mcfg);
        assert_bit_identical(
            &isolated,
            &report.queries[i].stats,
            &format!("{} serialized in burst", plan.name),
        );
    }
}

/// Satellite (c): total work is invariant to the quantum.  Page requests
/// never branch on hit/miss, so rows, compares, hashes, page requests and
/// page writes must match under any slicing — including a spilling sort
/// whose temp pages flow through the shared pool.
#[test]
fn quantum_is_not_observable_in_total_work() {
    let w = workload();
    let plans = catalog(&w);
    let mut specs: Vec<PlanSpec> = plans[..4]
        .iter()
        .map(|p| p.build(w.cal_a.threshold(0.3), w.cal_b.threshold(0.5)))
        .collect();
    specs.push(sort_spec(&w, 1 << 14)); // spills under every grant
    let baseline = serve_concurrent(
        &w.db,
        &specs,
        &ServeConfig { quantum: 1 << 30, ..ServeConfig::default() },
    );
    for quantum in [64, 513, 4096] {
        let report =
            serve_concurrent(&w.db, &specs, &ServeConfig { quantum, ..ServeConfig::default() });
        for (i, (b, q)) in baseline.queries.iter().zip(&report.queries).enumerate() {
            assert_eq!(
                work_signature(&b.stats.io),
                work_signature(&q.stats.io),
                "query {i} total work changed under quantum {quantum}"
            );
            assert_eq!(b.stats.rows_out, q.stats.rows_out, "query {i} rows");
            assert_eq!(b.stats.spilled, q.stats.spilled, "query {i} spill flag");
        }
    }
}

/// Satellite (c): per-query pool shares partition the shared pool's
/// counters exactly — every hit and miss is attributed to exactly one
/// query.
#[test]
fn per_query_shares_sum_to_pool_counters() {
    let w = workload();
    let plans = catalog(&w);
    let specs: Vec<PlanSpec> = (0..8)
        .map(|i| plans[i % plans.len()].build(w.cal_a.threshold(0.2), w.cal_b.threshold(0.6)))
        .collect();
    let report = serve_concurrent(&w.db, &specs, &serve_cfg());
    assert_eq!(report.idle_resets, 0, "unbounded admission never idles mid-burst");
    let (hits, misses, _evictions) = report.pool_counters;
    assert_eq!(report.queries.iter().map(|q| q.pool_hits).sum::<u64>(), hits);
    assert_eq!(report.queries.iter().map(|q| q.pool_misses).sum::<u64>(), misses);
    assert!(misses > 0, "a cold pool must miss");
}

/// Rerunning the same burst reproduces every bit: seconds, counters,
/// orders, shares.
#[test]
fn serving_is_deterministic() {
    let w = workload();
    let plans = catalog(&w);
    let mut specs: Vec<PlanSpec> = plans[3..9]
        .iter()
        .map(|p| p.build(w.cal_a.threshold(0.1), w.cal_b.threshold(0.8)))
        .collect();
    specs.push(sort_spec(&w, 1 << 14));
    let a = serve_concurrent(&w.db, &specs, &serve_cfg());
    let b = serve_concurrent(&w.db, &specs, &serve_cfg());
    assert_eq!(a.completion_order, b.completion_order);
    assert_eq!(a.admission_order, b.admission_order);
    assert_eq!(a.pool_counters, b.pool_counters);
    assert_eq!(a.idle_resets, b.idle_resets);
    for (i, (x, y)) in a.queries.iter().zip(&b.queries).enumerate() {
        assert_bit_identical(&x.stats, &y.stats, &format!("rerun query {i}"));
        assert_eq!(x.pool_hits, y.pool_hits, "query {i} hits");
        assert_eq!(x.pool_misses, y.pool_misses, "query {i} misses");
        assert_eq!(x.yields, y.yields, "query {i} yields");
    }
}

/// Admission at `max_in_flight = 2` queues FIFO, never starves, and every
/// queued query eventually completes with its full grant.
#[test]
fn admission_queue_completes_and_is_fifo() {
    let w = workload();
    let plans = catalog(&w);
    let specs: Vec<PlanSpec> = (0..6)
        .map(|i| plans[(2 * i) % plans.len()].build(w.cal_a.threshold(0.3), w.cal_b.threshold(0.3)))
        .collect();
    let mut scfg = serve_cfg();
    scfg.admission = AdmissionConfig { max_in_flight: 2, ..AdmissionConfig::default() };
    let report = serve_concurrent(&w.db, &specs, &scfg);
    assert_eq!(report.admission_order, (0..6).collect::<Vec<_>>(), "admission is FIFO");
    assert_eq!(report.queries.len(), 6);
    for (i, q) in report.queries.iter().enumerate() {
        assert!(q.stats.rows_out > 0, "query {i} produced no rows");
        assert_eq!(q.grant, 8 << 20, "query {i} should get the full grant");
    }
    let mut completed = report.completion_order.clone();
    completed.sort_unstable();
    assert_eq!(completed, (0..6).collect::<Vec<_>>(), "every query completes exactly once");
}

/// The tentpole's contention cliff: a memory budget that fits one full
/// grant plus the minimum admits the second sort with a shrunk grant —
/// and the shrunk grant *forces a spill* the same plan avoids under its
/// full grant.  The third sort queues until memory frees up, then runs
/// unspilled.
#[test]
fn shrunk_grant_forces_spill() {
    let w = workload();
    let specs = vec![sort_spec(&w, 8 << 20), sort_spec(&w, 8 << 20), sort_spec(&w, 8 << 20)];
    let mut scfg = serve_cfg();
    scfg.admission = AdmissionConfig {
        memory_budget: (8 << 20) + (64 << 10),
        ..AdmissionConfig::default()
    };
    let report = serve_concurrent(&w.db, &specs, &scfg);
    assert_eq!(report.admission_order, vec![0, 1, 2]);
    assert_eq!(report.queries[0].grant, 8 << 20);
    assert_eq!(report.queries[1].grant, 64 << 10, "second sort admitted shrunk");
    assert_eq!(report.queries[2].grant, 8 << 20, "third sort waits for the full grant");
    assert!(!report.queries[0].stats.spilled, "full grant: in-memory sort");
    assert!(report.queries[1].stats.spilled, "shrunk grant forces the spill");
    assert!(!report.queries[2].stats.spilled, "queued sort runs unspilled once memory frees");
    // All three sorted the same table.
    assert!(report.queries.iter().all(|q| q.stats.rows_out == 1 << 13));
}

/// Two spilling sorts interleaved over one pool do exactly the work each
/// does alone: the shared temp-file allocator keeps their spill files
/// disjoint, so neither query reads the other's runs.
#[test]
fn interleaved_spills_do_static_work() {
    let w = workload();
    let mcfg = MeasureConfig::default();
    let spec = sort_spec(&w, 1 << 14);
    let isolated = run_batch(&w, &spec, &mcfg);
    assert!(isolated.spilled, "the fixture must spill to exercise temp files");
    let report = serve_concurrent(
        &w.db,
        &[spec.clone(), spec.clone()],
        &ServeConfig { quantum: 257, ..ServeConfig::default() },
    );
    for (i, q) in report.queries.iter().enumerate() {
        assert!(q.stats.spilled, "query {i} must spill");
        assert_eq!(
            work_signature(&isolated.io),
            work_signature(&q.stats.io),
            "query {i}: interleaving changed its total work"
        );
        assert_eq!(isolated.rows_out, q.stats.rows_out, "query {i} rows");
    }
}
