//! Integration: the general join operators and the parallel scan, composed
//! through full plans against the standard workload — the substrate behind
//! the `ext_join` and `ext_parallel` robustness maps.

use robustmap::core::{measure_plan, MeasureConfig};
use robustmap::executor::{
    execute_collect, ColRange, ExecCtx, JoinAlgo, PlanSpec, Predicate, Projection,
};
use robustmap::storage::Session;
use robustmap::workload::{TableBuilder, Workload, WorkloadConfig, COL_A, COL_B, COL_C};

fn workload() -> Workload {
    TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 13))
}

/// R(c, a) = rows with a <= ta; S(c, b) = rows with b <= tb; join on c.
/// `c` is a permutation, so the join is 1:1 where both predicates hold.
fn join_plan(w: &Workload, ta: i64, tb: i64, algo: JoinAlgo, memory: usize) -> PlanSpec {
    PlanSpec::Join {
        left: Box::new(PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(COL_A, ta)),
            project: Projection::Columns(vec![COL_C, COL_A]),
        }),
        right: Box::new(PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(COL_B, tb)),
            project: Projection::Columns(vec![COL_C, COL_B]),
        }),
        left_key: 0,
        right_key: 0,
        algo,
        memory_bytes: memory,
        project: Projection::All,
    }
}

fn reference_join(w: &Workload, ta: i64, tb: i64) -> Vec<Vec<i64>> {
    let s = Session::with_pool_pages(0);
    let mut out = Vec::new();
    w.db.table(w.table).heap.scan(&s, |_, row| {
        // Self-join on the permutation column c: a row matches itself.
        if row.get(COL_A) <= ta && row.get(COL_B) <= tb {
            out.push(vec![row.get(COL_C), row.get(COL_A), row.get(COL_C), row.get(COL_B)]);
        }
    });
    out.sort();
    out
}

#[test]
fn all_join_algorithms_agree_with_reference() {
    let w = workload();
    for (sa, sb) in [(0.25, 0.5), (1.0, 0.05), (0.01, 1.0)] {
        let ta = w.cal_a.threshold(sa);
        let tb = w.cal_b.threshold(sb);
        let want = reference_join(&w, ta, tb);
        for algo in [
            JoinAlgo::SortMerge,
            JoinAlgo::Hash { build_left: true },
            JoinAlgo::Hash { build_left: false },
        ] {
            for memory in [4096usize, 1 << 22] {
                let s = Session::with_pool_pages(256);
                let ctx = ExecCtx::new(&w.db, &s, memory);
                let plan = join_plan(&w, ta, tb, algo, memory);
                let (_, rows) = execute_collect(&plan, &ctx).unwrap();
                let mut got: Vec<Vec<i64>> =
                    rows.iter().map(|r| r.values().to_vec()).collect();
                got.sort();
                assert_eq!(got, want, "{algo:?} with {memory}B at ({sa},{sb})");
            }
        }
    }
}

#[test]
fn hash_join_build_side_cliff_is_one_sided() {
    let w = workload();
    let memory = 64 * 1024;
    let (big, small) = (w.cal_a.threshold(1.0), w.cal_b.threshold(1.0 / 128.0));
    let cost = |algo| {
        measure_plan(
            &w.db,
            &join_plan(&w, big, small, algo, memory),
            &MeasureConfig { memory_bytes: memory, ..Default::default() },
        )
    };
    // Left input (a <= max) is large, right (b small) is tiny.
    let build_large = cost(JoinAlgo::Hash { build_left: true });
    let build_small = cost(JoinAlgo::Hash { build_left: false });
    assert!(build_large.spilled, "building the large side must spill");
    assert!(!build_small.spilled, "building the tiny side must not spill");
    assert!(
        build_large.seconds > build_small.seconds,
        "cliff: {} vs {}",
        build_large.seconds,
        build_small.seconds
    );
}

#[test]
fn sort_merge_join_cost_ignores_input_order() {
    let w = workload();
    let ta = w.cal_a.threshold(1.0 / 64.0);
    let tb = w.cal_b.threshold(0.5);
    let cfg = MeasureConfig::default();
    let c1 = measure_plan(&w.db, &join_plan(&w, ta, tb, JoinAlgo::SortMerge, 1 << 18), &cfg);
    // Swap the roles: join S with R instead.
    let swapped = PlanSpec::Join {
        left: Box::new(PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(COL_B, tb)),
            project: Projection::Columns(vec![COL_C, COL_B]),
        }),
        right: Box::new(PlanSpec::TableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(COL_A, ta)),
            project: Projection::Columns(vec![COL_C, COL_A]),
        }),
        left_key: 0,
        right_key: 0,
        algo: JoinAlgo::SortMerge,
        memory_bytes: 1 << 18,
        project: Projection::All,
    };
    let c2 = measure_plan(&w.db, &swapped, &cfg);
    assert_eq!(c1.rows, c2.rows);
    let ratio = c1.seconds / c2.seconds;
    assert!((0.95..=1.05).contains(&ratio), "sort-merge asymmetric: ratio {ratio:.3}");
}

#[test]
fn parallel_scan_plan_matches_serial_scan() {
    let w = workload();
    let t = w.cal_a.threshold(0.25);
    let serial = PlanSpec::TableScan {
        table: w.table,
        pred: Predicate::single(ColRange::at_most(COL_A, t)),
        project: Projection::Columns(vec![COL_C]),
    };
    let s = Session::with_pool_pages(256);
    let ctx = ExecCtx::new(&w.db, &s, 1 << 20);
    let (_, want) = execute_collect(&serial, &ctx).unwrap();
    let mut want: Vec<i64> = want.iter().map(|r| r.get(0)).collect();
    want.sort_unstable();
    for (dop, skew) in [(1u32, 0u32), (4, 0), (8, 500), (16, 1000)] {
        let plan = PlanSpec::ParallelTableScan {
            table: w.table,
            pred: Predicate::single(ColRange::at_most(COL_A, t)),
            project: Projection::Columns(vec![COL_C]),
            dop,
            skew_permille: skew,
        };
        let s2 = Session::with_pool_pages(256);
        let ctx2 = ExecCtx::new(&w.db, &s2, 1 << 20);
        let (_, rows) = execute_collect(&plan, &ctx2).unwrap();
        let mut got: Vec<i64> = rows.iter().map(|r| r.get(0)).collect();
        got.sort_unstable();
        assert_eq!(got, want, "dop {dop} skew {skew}");
    }
}

#[test]
fn parallel_speedup_is_monotone_in_dop() {
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 16));
    let cfg = MeasureConfig::default();
    let elapsed = |dop| {
        let plan = PlanSpec::ParallelTableScan {
            table: w.table,
            pred: Predicate::always_true(),
            project: Projection::Columns(vec![COL_C]),
            dop,
            skew_permille: 0,
        };
        measure_plan(&w.db, &plan, &cfg).seconds
    };
    let times: Vec<f64> = [1u32, 2, 4, 8].iter().map(|&d| elapsed(d)).collect();
    for w in times.windows(2) {
        assert!(w[1] < w[0], "adding workers must not slow the scan: {times:?}");
    }
}
