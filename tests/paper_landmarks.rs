//! Integration: the paper's Figure 1 landmarks hold on the calibrated
//! cost model, at any table size (the landmarks are fractions of the
//! table, so they are scale-free).

use robustmap::core::analysis::flattening::flattening_violations_log2;
use robustmap::core::analysis::landmarks::crossovers;
use robustmap::core::analysis::monotonicity::monotonicity_violations;
use robustmap::core::{build_map1d, Grid1D, MeasureConfig};
use robustmap::systems::{single_predicate_plans, SinglePredPlanSet};
use robustmap::workload::{TableBuilder, Workload, WorkloadConfig};

fn fig1_map(rows: u64, grid_exp: u32, pool_pages: usize) -> (Workload, robustmap::core::Map1D) {
    // The pool must stay well below the heap's page count, as in the
    // paper's setup (60M rows dwarf any 2009 buffer pool); otherwise the
    // traditional fetch is absorbed by caching and the landmarks vanish.
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(rows));
    assert!((pool_pages as u32) < w.heap_pages() / 2, "pool too large for this table");
    let plans = single_predicate_plans(SinglePredPlanSet::Basic, &w);
    let cfg = MeasureConfig { pool_pages, ..Default::default() };
    let map = build_map1d(&w, &plans, &Grid1D::pow2(grid_exp), &cfg);
    (w, map)
}

#[test]
fn break_even_table_scan_vs_traditional_near_2_to_minus_11() {
    let (_, map) = fig1_map(1 << 16, 13, 128);
    let scan = map.series_named("table scan").unwrap().seconds();
    let trad = map.series_named("traditional index scan").unwrap().seconds();
    let xs = crossovers(&map.sels, &scan, &trad);
    assert_eq!(xs.len(), 1, "exactly one break-even expected");
    let log2 = xs[0].at.log2();
    // Paper: "about 30K result rows or 2^-11 of the rows in the table".
    assert!(
        (-12.5..=-9.5).contains(&log2),
        "break-even at 2^{log2:.1}, expected around 2^-11"
    );
    assert!(xs[0].a_wins_after, "the table scan wins beyond the break-even");
}

#[test]
fn improved_scan_is_competitive_until_about_2_to_minus_4() {
    let (_, map) = fig1_map(1 << 16, 13, 128);
    let scan = map.series_named("table scan").unwrap().seconds();
    let improved = map.series_named("improved index scan").unwrap().seconds();
    let xs = crossovers(&map.sels, &scan, &improved);
    assert_eq!(xs.len(), 1);
    let log2 = xs[0].at.log2();
    // Paper: "competitive with the table scan all the way up to ... 2^-4".
    assert!(
        (-5.5..=-2.5).contains(&log2),
        "improved-scan crossover at 2^{log2:.1}, expected around 2^-4"
    );
}

#[test]
fn improved_scan_is_about_2_5x_table_scan_at_full_selectivity() {
    let (_, map) = fig1_map(1 << 16, 13, 128);
    let scan = map.series_named("table scan").unwrap().seconds();
    let improved = map.series_named("improved index scan").unwrap().seconds();
    let factor = improved.last().unwrap() / scan.last().unwrap();
    // Paper: "about 2.5 times worse than a table scan".
    assert!((1.8..=3.5).contains(&factor), "factor {factor:.2}, expected ~2.5");
}

#[test]
fn traditional_scan_is_orders_of_magnitude_worse_at_full_selectivity() {
    let (_, map) = fig1_map(1 << 16, 13, 128);
    let scan = map.series_named("table scan").unwrap().seconds();
    let trad = map.series_named("traditional index scan").unwrap().seconds();
    let factor = trad.last().unwrap() / scan.last().unwrap();
    // Paper: "would exceed the cost of a table scan by multiple orders of
    // magnitude" (the exact factor grows with table size).
    assert!(factor > 50.0, "factor {factor:.0}, expected orders of magnitude");
}

#[test]
fn all_fig1_cost_curves_are_monotone() {
    // §3.1's first check: more result rows must never cost less.
    let (_, map) = fig1_map(1 << 16, 13, 128);
    for series in &map.series {
        let violations =
            monotonicity_violations(&map.sels, &series.seconds(), 0.02);
        assert!(
            violations.is_empty(),
            "{}: cost dips {:?}",
            series.plan,
            violations
        );
    }
}

#[test]
fn improved_scan_fails_the_flattening_check_as_the_paper_observes() {
    // §3.1: "This last condition is not true for the improved index scan in
    // Figure 1 as it shows a flat cost growth followed by a steeper cost
    // growth for very large result sizes."  The observation is about the
    // paper's log-log axes: in linear space the curve is concave (sparse
    // results pay a random read per row, dense ones ride read-ahead), but
    // on log-log axes the growth flattens where the B-tree traversal
    // dominates and then steepens again as per-row work takes over.
    let (_, map) = fig1_map(1 << 16, 13, 128);
    let improved = map.series_named("improved index scan").unwrap();
    let work: Vec<f64> = map.result_rows.iter().map(|&r| r as f64).collect();
    let violations = flattening_violations_log2(&work, &improved.seconds(), 1.25);
    assert!(
        !violations.is_empty(),
        "expected the improved scan's steep tail to violate flattening"
    );
}

#[test]
fn landmarks_are_scale_free() {
    // The same fractional landmarks at a quarter of the rows.  The grid
    // must reach below the ~2^-11.3 break-even fraction.
    let (_, map) = fig1_map(1 << 14, 13, 16);
    let scan = map.series_named("table scan").unwrap().seconds();
    let trad = map.series_named("traditional index scan").unwrap().seconds();
    let xs = crossovers(&map.sels, &scan, &trad);
    assert_eq!(xs.len(), 1);
    assert!(
        (-13.0..=-9.0).contains(&xs[0].at.log2()),
        "break-even moved to 2^{:.1}",
        xs[0].at.log2()
    );
}
