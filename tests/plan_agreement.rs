//! Integration: every plan the three systems offer must compute the same
//! query result — the robustness maps compare *costs* of equivalent plans,
//! so equivalence is the bedrock invariant.

use robustmap::executor::{execute_collect, execute_count, ExecCtx};
use robustmap::storage::Session;
use robustmap::systems::{
    single_predicate_plans, two_predicate_plans, SinglePredPlanSet, SystemId,
};
use robustmap::workload::{TableBuilder, Workload, WorkloadConfig};

fn workload() -> Workload {
    TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 13))
}

#[test]
fn fifteen_two_predicate_plans_agree_across_the_grid() {
    let w = workload();
    let n = w.rows();
    // A 5x5 sub-grid including both extremes.
    let sels = [1.0 / 4096.0, 1.0 / 256.0, 1.0 / 16.0, 0.25, 1.0];
    for &sa in &sels {
        for &sb in &sels {
            let (ta, ca) = w.cal_a.threshold_with_count(sa);
            let (tb, cb) = w.cal_b.threshold_with_count(sb);
            assert_eq!(ca, (n as f64 * sa).round() as u64);
            assert_eq!(cb, (n as f64 * sb).round() as u64);
            let mut expected = None;
            for sys in SystemId::all() {
                for plan in two_predicate_plans(sys, &w) {
                    let s = Session::with_pool_pages(512);
                    let ctx = ExecCtx::new(&w.db, &s, 1 << 22);
                    let stats = execute_count(&plan.build(ta, tb), &ctx).unwrap();
                    match expected {
                        None => expected = Some(stats.rows_out),
                        Some(e) => {
                            assert_eq!(stats.rows_out, e, "{} at ({sa},{sb})", plan.name)
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn single_predicate_plans_return_identical_row_sets() {
    let w = workload();
    for sel in [1.0 / 1024.0, 1.0 / 8.0, 1.0] {
        let ta = w.cal_a.threshold(sel);
        let mut reference: Option<Vec<Vec<i64>>> = None;
        for plan in single_predicate_plans(SinglePredPlanSet::WithIndexJoins, &w) {
            let s = Session::with_pool_pages(512);
            let ctx = ExecCtx::new(&w.db, &s, 1 << 22);
            let (_, rows) = execute_collect(&plan.build(ta), &ctx).unwrap();
            let mut rows: Vec<Vec<i64>> = rows.iter().map(|r| r.values().to_vec()).collect();
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(want) => assert_eq!(&rows, want, "{} at sel {sel}", plan.name),
            }
        }
        // And the reference matches a direct heap filter.
        let s = Session::with_pool_pages(0);
        let mut truth: Vec<Vec<i64>> = Vec::new();
        w.db.table(w.table).heap.scan(&s, |_, row| {
            if row.get(robustmap::workload::COL_A) <= ta {
                truth.push(vec![
                    row.get(robustmap::workload::COL_A),
                    row.get(robustmap::workload::COL_C),
                ]);
            }
        });
        truth.sort();
        assert_eq!(reference.unwrap(), truth);
    }
}

#[test]
fn results_are_insensitive_to_buffer_pool_and_memory() {
    // Run-time conditions change costs, never results.
    let w = workload();
    let (ta, tb) = (w.cal_a.threshold(0.25), w.cal_b.threshold(0.5));
    for sys in SystemId::all() {
        for plan in two_predicate_plans(sys, &w) {
            let mut counts = Vec::new();
            for (pool, memory) in [(0usize, 4096usize), (64, 1 << 14), (4096, 1 << 24)] {
                let s = Session::with_pool_pages(pool);
                let ctx = ExecCtx::new(&w.db, &s, memory);
                counts.push(execute_count(&plan.build(ta, tb), &ctx).unwrap().rows_out);
            }
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "{}: counts varied with run-time conditions: {counts:?}",
                plan.name
            );
        }
    }
}

#[test]
fn empty_and_full_selectivity_edges() {
    let w = workload();
    for sys in SystemId::all() {
        for plan in two_predicate_plans(sys, &w) {
            let s = Session::with_pool_pages(256);
            let ctx = ExecCtx::new(&w.db, &s, 1 << 22);
            // Empty: a-threshold below every value.
            let stats = execute_count(&plan.build(i64::MIN, i64::MAX), &ctx).unwrap();
            assert_eq!(stats.rows_out, 0, "{} not empty", plan.name);
            // Full: both thresholds above every value.
            let ctx2 = ExecCtx::new(&w.db, &s, 1 << 22);
            let stats = execute_count(&plan.build(i64::MAX, i64::MAX), &ctx2).unwrap();
            assert_eq!(stats.rows_out, w.rows(), "{} not full", plan.name);
        }
    }
}
