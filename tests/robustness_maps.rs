//! Integration: structural invariants of 2-D robustness maps built from
//! real measurements, plus the qualitative claims of Figures 4-10 that are
//! scale-free.

use robustmap::core::analysis::symmetry::symmetry_of;
use robustmap::core::regions::RegionStats;
use robustmap::core::{
    build_map2d, Grid2D, Map2D, MeasureConfig, OptimalityTolerance, RelativeMap2D,
};
use robustmap::systems::{two_predicate_plans, SystemId, TwoPredPlan};
use robustmap::workload::{TableBuilder, Workload, WorkloadConfig};

fn build_all(rows: u64, grid_exp: u32, cfg: MeasureConfig) -> (Workload, Map2D) {
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(rows));
    let plans: Vec<TwoPredPlan> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, &w)).collect();
    let map = build_map2d(&w, &plans, &Grid2D::pow2(grid_exp), &cfg);
    (w, map)
}

/// Conditions under which the paper's effects are visible at test scale:
/// the buffer pool must stay well below the heap size (as 2009 pools did
/// against 60M-row tables).
fn small_pool() -> MeasureConfig {
    MeasureConfig { pool_pages: 64, ..Default::default() }
}

#[test]
fn relative_map_invariants() {
    let (_, map) = build_all(1 << 13, 8, MeasureConfig::default());
    let rel = RelativeMap2D::from_map(&map);
    let (na, nb) = rel.dims();
    for p in 0..map.plan_count() {
        for &q in rel.quotient_grid(p) {
            assert!(q >= 1.0 - 1e-12, "quotient below 1: {q}");
            assert!(q.is_finite());
        }
    }
    // The best plan at each point has quotient exactly 1.
    for ia in 0..na {
        for ib in 0..nb {
            let best = rel.best_plan_at(ia, ib);
            assert!((rel.quotient(best, ia, ib) - 1.0).abs() < 1e-12);
        }
    }
    // Union of strict optimality regions covers the grid.
    let mut covered = vec![false; na * nb];
    for p in 0..map.plan_count() {
        let region = rel.optimal_region(p, OptimalityTolerance::Factor(1.0 + 1e-9));
        for ia in 0..na {
            for ib in 0..nb {
                if region.get(ia, ib) {
                    covered[ia * nb + ib] = true;
                }
            }
        }
    }
    assert!(covered.iter().all(|&c| c), "every point needs an optimal plan");
}

#[test]
fn figure4_shape_one_dimension_dominates() {
    // This contrast needs the fetch-I/O regimes to separate: a table large
    // enough that reading it dwarfs a handful of random fetches, and a
    // grid floor low enough that the smallest cells *are* a handful of
    // fetches (the paper had 60M rows and swept to 2^-16).
    let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 17));
    let plans = two_predicate_plans(SystemId::A, &w);
    let map = build_map2d(&w, &plans, &Grid2D::pow2(14), &small_pool());
    let plan = map.plan_index("A2 idx(a) fetch").unwrap();
    let grid = map.seconds_grid(plan);
    let (na, nb) = map.dims();
    // Spread along sel_a (the indexed predicate) is large; along sel_b (the
    // residual, applied after fetching) it is negligible.
    let mut spread_a = 1.0f64;
    for ib in 0..nb {
        let col: Vec<f64> = (0..na).map(|ia| grid[ia * nb + ib]).collect();
        let (mn, mx) = col.iter().fold((f64::INFINITY, 0.0f64), |(l, h), &v| (l.min(v), h.max(v)));
        spread_a = spread_a.max(mx / mn);
    }
    let mut spread_b = 1.0f64;
    for ia in 0..na {
        let row: Vec<f64> = (0..nb).map(|ib| grid[ia * nb + ib]).collect();
        let (mn, mx) = row.iter().fold((f64::INFINITY, 0.0f64), |(l, h), &v| (l.min(v), h.max(v)));
        spread_b = spread_b.max(mx / mn);
    }
    assert!(
        spread_a > 10.0 * spread_b,
        "sel_a spread {spread_a:.1}x should dwarf sel_b spread {spread_b:.2}x"
    );
}

#[test]
fn figure5_merge_join_is_symmetric_hash_is_less_so() {
    // The in-memory cost model isolates the algorithmic (CPU) symmetry
    // mechanism from small-cell I/O granularity "measurement flukes in the
    // sub-second range" that the paper itself notes in Figure 5.
    let cfg = MeasureConfig {
        model: robustmap::storage::CostModel::in_memory(),
        ..Default::default()
    };
    let (_, map) = build_all(1 << 14, 8, cfg);
    let n = map.sel_a.len();
    let merge = symmetry_of(&map.seconds_grid(map.plan_index("A4 merge(a,b) intersect").unwrap()), n);
    let hash = symmetry_of(&map.seconds_grid(map.plan_index("A6 hash(a,b) intersect").unwrap()), n);
    // Merge intersect sorts both inputs: symmetric on average.  Hash
    // intersect builds on one fixed side (build costs more than probe):
    // asymmetric, as the paper (and GLS94) predicts.
    assert!(
        merge.mean_log_ratio.exp() < 1.05,
        "merge mean asymmetry {:.3}",
        merge.mean_log_ratio.exp()
    );
    assert!(
        hash.mean_log_ratio > 2.0 * merge.mean_log_ratio,
        "hash (mean {:.4}) should be clearly less symmetric than merge (mean {:.4})",
        hash.mean_log_ratio.exp(),
        merge.mean_log_ratio.exp()
    );
}

#[test]
fn figure8_bitmap_plan_beats_figure7_plan_on_worst_case() {
    let (_, map) = build_all(1 << 15, 8, small_pool());
    let rel_a = RelativeMap2D::from_map(&map.subset_by_prefix("A"));
    let rel_b = RelativeMap2D::from_map(&map.subset_by_prefix("B"));
    let a2 = rel_a.plans.iter().position(|p| p.starts_with("A2")).unwrap();
    let b1 = rel_b.plans.iter().position(|p| p.starts_with("B1")).unwrap();
    // Paper on Figure 8: "its worst quotient is not as bad as the one of
    // the prior plan shown in Figure 7" and it is near-optimal "over a much
    // larger region".
    assert!(
        rel_b.worst_quotient(b1) < rel_a.worst_quotient(a2),
        "B1 worst {:.1} should beat A2 worst {:.1}",
        rel_b.worst_quotient(b1),
        rel_a.worst_quotient(a2)
    );
    let region_b = RegionStats::of(&rel_b.optimal_region(b1, OptimalityTolerance::Factor(1.2)));
    let region_a = RegionStats::of(&rel_a.optimal_region(a2, OptimalityTolerance::Factor(1.2)));
    assert!(
        region_b.coverage > region_a.coverage,
        "B1 covers {:.2}, A2 covers {:.2}",
        region_b.coverage,
        region_a.coverage
    );
}

#[test]
fn figure9_mdam_plan_is_reasonable_everywhere() {
    let (_, map) = build_all(1 << 14, 8, small_pool());
    let rel_c = RelativeMap2D::from_map(&map.subset_by_prefix("C"));
    let c1 = rel_c.plans.iter().position(|p| p.starts_with("C1")).unwrap();
    // "The relative performance is reasonable across the entire parameter
    // space, albeit not optimal."
    assert!(
        rel_c.area_within(c1, 10.0) > 0.95,
        "C1 within 10x on only {:.0}% of the space",
        rel_c.area_within(c1, 10.0) * 100.0
    );
    // And it is near-best (within 20%) at a meaningful share of points.
    let optimal = rel_c.optimal_region(c1, OptimalityTolerance::Factor(1.2));
    assert!(optimal.fraction() > 0.15, "C1 near-optimal at {:.0}%", optimal.fraction() * 100.0);
}

#[test]
fn figure10_most_points_have_multiple_optimal_plans() {
    let (_, map) = build_all(1 << 13, 8, MeasureConfig::default());
    let rel = RelativeMap2D::from_map(&map);
    let counts = rel.optimal_plan_counts(OptimalityTolerance::Factor(1.2));
    let multi = counts.iter().filter(|&&c| c >= 2).count();
    // Paper: "Most points in the parameter space have multiple optimal
    // plans (within ... measurement error)."
    assert!(
        multi * 2 > counts.len(),
        "only {multi} of {} points have several near-optimal plans",
        counts.len()
    );
}

#[test]
fn maps_are_deterministic_across_builds_and_thread_counts() {
    let build = |threads| {
        let w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 12));
        let plans = two_predicate_plans(SystemId::A, &w);
        let cfg = MeasureConfig { threads, ..Default::default() };
        build_map2d(&w, &plans, &Grid2D::pow2(6), &cfg)
    };
    let m1 = build(1);
    let m2 = build(4);
    let m3 = build(0);
    assert_eq!(m1, m2);
    assert_eq!(m2, m3);
}
