//! Differential equivalence for the batched executor over a *churned*
//! heap.
//!
//! `tests/batch_equivalence.rs` pins the batch path to the row path on
//! the pristine builder output, where every slot of every heap page is
//! live.  The churn engine breaks that tidy shape: deletes leave
//! tombstoned slots that a scan must skip (the pages are never
//! compacted), updates tombstone one slot and append another, and
//! inserts grow the heap past the bulk-loaded prefix with partially
//! filled tail pages.  Each of those is a batch-boundary hazard — a
//! columnar chunk that straddles a run of tombstones must produce the
//! same rows *and the same charge sequence* as the row-at-a-time loop.
//!
//! "Equal" is the same contract as the base suite: bit-identical
//! simulated seconds (`f64` addition is not associative), identical
//! `IoStats`, row counts, spill flags, and per-operator breakdowns —
//! plus, for the collect path, identical result rows in identical
//! order.  Honouring `ROBUSTMAP_BATCH_ROWS` (the verify script re-runs
//! this suite at 513) pushes the chunk boundaries onto different
//! tombstone runs.

use robustmap::core::MeasureConfig;
use robustmap::executor::{
    execute_collect, execute_collect_batched, execute_count, execute_count_batched, ExecConfig,
    ExecCtx, ExecStats,
};
use robustmap::storage::{BufferPool, Session};
use robustmap::systems::{two_predicate_plans, SystemId, TwoPredPlan};
use robustmap::workload::{ChurnConfig, ChurnDriver, TableBuilder, Workload, WorkloadConfig};

/// Build a workload and churn 30% of it so the heap carries tombstones,
/// update-moved rows, and appended tail pages.
fn churned_workload() -> (Workload, u64) {
    let mut w = TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 13));
    let cfg = ChurnConfig::for_workload(&w);
    let mut driver = ChurnDriver::new(&w, cfg);
    let session = Session::with_pool_pages(64);
    let batches = driver.apply_until_fraction(&mut w, &session, 0.3);
    let deleted: u64 = batches.iter().map(|b| b.deleted.len() as u64).sum();
    (w, deleted)
}

fn session(cfg: &MeasureConfig) -> Session {
    Session::new(cfg.model.clone(), BufferPool::new(cfg.pool_pages, cfg.policy))
}

fn assert_bit_identical(row: &ExecStats, batch: &ExecStats, label: &str) {
    assert_eq!(row.rows_out, batch.rows_out, "{label}: rows_out");
    assert_eq!(
        row.seconds.to_bits(),
        batch.seconds.to_bits(),
        "{label}: simulated seconds diverged ({} vs {})",
        row.seconds,
        batch.seconds
    );
    assert_eq!(row.io, batch.io, "{label}: IoStats");
    assert_eq!(row.spilled, batch.spilled, "{label}: spill flag");
    assert_eq!(row.operators.len(), batch.operators.len(), "{label}: operator count");
    for (i, (r, b)) in row.operators.iter().zip(&batch.operators).enumerate() {
        assert_eq!(r.label, b.label, "{label}: op #{i} label");
        assert_eq!(r.rows_out, b.rows_out, "{label}: op #{i} ({}) rows_out", r.label);
        assert_eq!(
            r.seconds.to_bits(),
            b.seconds.to_bits(),
            "{label}: op #{i} ({}) inclusive seconds",
            r.label
        );
    }
}

/// Every plan in the three-system catalog over a selectivity grid, on the
/// tombstoned heap, count path: same bits, row path vs batch path.
#[test]
fn catalog_is_bit_identical_on_tombstoned_heap() {
    let (w, deleted) = churned_workload();
    assert!(deleted > 0, "churn produced no tombstones; the suite tests nothing");
    let plans: Vec<TwoPredPlan> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, &w)).collect();
    assert_eq!(plans.len(), 15, "catalog size changed; update this suite");
    let cfg = MeasureConfig::default();
    let ec = ExecConfig::default();
    let sels = [0.02, 0.3, 0.9];
    for plan in &plans {
        for &sa in &sels {
            for &sb in &sels {
                let spec = plan.build(w.cal_a.threshold(sa), w.cal_b.threshold(sb));
                let label = format!("churned {} @ ({sa}, {sb})", plan.name);
                let s = session(&cfg);
                let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
                let row = execute_count(&spec, &ctx).expect("row path");
                let s = session(&cfg);
                let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
                let batch = execute_count_batched(&spec, &ctx, &ec).expect("batch path");
                assert_bit_identical(&row, &batch, &label);
            }
        }
    }
}

/// The collect path must return identical rows in identical order:
/// tombstone-skipping may not reorder or duplicate survivors, whatever
/// the chunk size.
#[test]
fn collected_rows_are_identical_on_tombstoned_heap() {
    let (w, _) = churned_workload();
    let plans: Vec<TwoPredPlan> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, &w)).collect();
    let cfg = MeasureConfig::default();
    let (ta, tb) = (w.cal_a.threshold(0.25), w.cal_b.threshold(0.55));
    for plan in &plans {
        let spec = plan.build(ta, tb);
        let s = session(&cfg);
        let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
        let (row_stats, row_rows) = execute_collect(&spec, &ctx).expect("row path");
        for batch_rows in [1usize, 513, 1 << 20] {
            let ec = ExecConfig::with_batch_rows(batch_rows);
            let s = session(&cfg);
            let ctx = ExecCtx::new(&w.db, &s, cfg.memory_bytes);
            let (batch_stats, batch_rows_out) =
                execute_collect_batched(&spec, &ctx, &ec).expect("batch path");
            let label = format!("churned collect {} @ batch {batch_rows}", plan.name);
            assert_bit_identical(&row_stats, &batch_stats, &label);
            assert_eq!(row_rows, batch_rows_out, "{label}: collected rows");
        }
    }
}
