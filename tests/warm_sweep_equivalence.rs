//! The warm-path sweep engine's correctness contract, map-shaped: worker
//! threads reuse one session per thread (reset between cells) instead of
//! constructing a session per cell, and the resulting maps must be
//! identical cell-for-cell to fresh-session measurements — cold-buffer
//! semantics are preserved by `Session::reset`, not weakened by reuse.
//! `docs/DESIGN.md` records the equivalence argument; this test pins it.

use robustmap::core::{
    build_map2d, measure_batch, measure_plan, Grid2D, MeasureConfig, Measurement,
};
use robustmap::executor::{ExecCtx, PlanSpec};
use robustmap::storage::{BufferPool, Session};
use robustmap::systems::{two_predicate_plans, SystemId, TwoPredPlan};
use robustmap::workload::{TableBuilder, Workload, WorkloadConfig};

fn workload() -> Workload {
    TableBuilder::build_cached(WorkloadConfig::with_rows(1 << 13))
}

/// Measure one plan the maximally-cold way: a brand-new session and
/// context, no arena involved.
fn cold_measure(w: &Workload, spec: &PlanSpec, cfg: &MeasureConfig) -> Measurement {
    let session = Session::new(cfg.model.clone(), BufferPool::new(cfg.pool_pages, cfg.policy));
    let ctx = ExecCtx::new(&w.db, &session, cfg.memory_bytes);
    let stats = robustmap::executor::execute_count(spec, &ctx).expect("well-formed plan");
    Measurement {
        seconds: stats.seconds,
        io: stats.io,
        rows: stats.rows_out,
        spilled: stats.spilled,
    }
}

#[test]
fn warm_batch_equals_cold_measurements_cell_for_cell() {
    let w = workload();
    let plans: Vec<TwoPredPlan> =
        SystemId::all().into_iter().flat_map(|s| two_predicate_plans(s, &w)).collect();
    let grid = Grid2D::pow2(2);
    let ta: Vec<i64> = grid.sel_a().iter().map(|&s| w.cal_a.threshold(s)).collect();
    let tb: Vec<i64> = grid.sel_b().iter().map(|&s| w.cal_b.threshold(s)).collect();
    let mut specs = Vec::new();
    for plan in &plans {
        for &a in &ta {
            for &b in &tb {
                specs.push(plan.build(a, b));
            }
        }
    }
    let cfg = MeasureConfig { threads: 1, ..Default::default() };
    // The warm path: one arena measuring every cell in sequence.
    let warm = measure_batch(&w.db, &specs, &cfg);
    assert_eq!(warm.len(), specs.len());
    // Cold reference, cell for cell.
    for (i, spec) in specs.iter().enumerate() {
        assert_eq!(warm[i], cold_measure(&w, spec, &cfg), "cell #{i} diverged warm vs cold");
    }
}

#[test]
fn thread_count_does_not_change_maps() {
    let w = workload();
    let plans = two_predicate_plans(SystemId::B, &w);
    let grid = Grid2D::pow2(3);
    let serial = build_map2d(&w, &plans, &grid, &MeasureConfig { threads: 1, ..Default::default() });
    for threads in [2, 4, 8] {
        let cfg = MeasureConfig { threads, ..Default::default() };
        assert_eq!(serial, build_map2d(&w, &plans, &grid, &cfg), "threads={threads}");
    }
}

#[test]
fn measure_plan_is_the_arena_of_one() {
    // The public one-off entry point must agree with both paths.
    let w = workload();
    let plans = two_predicate_plans(SystemId::C, &w);
    let cfg = MeasureConfig::default();
    let spec = plans[0].build(w.cal_a.threshold(0.25), w.cal_b.threshold(0.5));
    assert_eq!(measure_plan(&w.db, &spec, &cfg), cold_measure(&w, &spec, &cfg));
    assert_eq!(measure_batch(&w.db, std::slice::from_ref(&spec), &cfg)[0], cold_measure(&w, &spec, &cfg));
}
