//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of the criterion API its benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] with [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`] and [`black_box`].
//!
//! Instead of criterion's statistical machinery it reports the mean
//! wall-clock time per iteration over `sample_size` timed iterations
//! (after one untimed warm-up), printed one line per benchmark.  That is
//! enough to compare substrate hot paths release-to-release; swapping the
//! real criterion back in is a manifest-only change.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] amortises setup; accepted for API
/// compatibility, the shim always times one routine call per setup call.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times the closure a benchmark hands it.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.to_string(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// End the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: u64, mut f: F) {
    // One untimed warm-up pass populates caches and lazy state.
    let mut warmup = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut warmup);
    let mut b = Bencher { iters: sample_size, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    println!("bench {label:<40} {:>12.3} ms/iter  ({} iters)", per_iter * 1e3, b.iters);
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
