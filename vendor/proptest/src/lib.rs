//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of the proptest API its property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`] and
//! [`collection::btree_set`], [`any`], [`Just`], [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic cases.
//! Case inputs are a pure function of the test name and case index, so a
//! failure reproduces on every run with no persistence files.  There is
//! **no shrinking** — the failure message reports the case index and the
//! generated inputs are recomputable, which has proven enough for this
//! workspace's model-based tests.  Swapping the real proptest back in is
//! a manifest-only change.

#![forbid(unsafe_code)]

use rand::SeedableRng;

/// Deterministic generator handed to strategies.
pub type TestRng = rand::rngs::StdRng;

// Re-export the sampling traits so generated code and strategies can use
// `gen_range` on [`TestRng`].
pub use rand::Rng;

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
    // `prop::collection::vec(...)` etc., as in the real prelude.
    pub use crate as prop;
}

// ------------------------------------------------------------------ config

/// Per-test configuration (the subset we honour: `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ------------------------------------------------------------------ errors

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail<M: std::fmt::Display>(msg: M) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

// ---------------------------------------------------------------- strategy

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u32, u64, usize, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// --------------------------------------------------------------- any::<T>()

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <u64 as rand::Standard>::sample(rng) as Self
            }
        }
    )+};
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl_arbitrary_int!(u8, u16, u32, usize);

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over `T`'s whole domain: `any::<u8>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

// -------------------------------------------------------------- prop_oneof

/// Box a strategy for use in heterogeneous unions ([`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// A uniform choice between strategies with a common value type.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// -------------------------------------------------------------- collections

/// Collection strategies (`prop::collection::vec`, `…::btree_set`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector whose length lies in `size`, elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// See [`btree_set()`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Small element domains may not admit `target` distinct values;
            // cap the attempts and accept what was reachable (real proptest
            // behaves the same way via rejection limits).
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 32 {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// An ordered set with between `size` distinct elements (best effort
    /// when the element domain is smaller than requested).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }
}

// ------------------------------------------------------------------ runner

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one property through `config.cases` deterministic cases.
///
/// Called by the code [`proptest!`] generates; not part of the public
/// proptest API surface.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for i in 0..config.cases {
        // Inputs are a pure function of (test name, case index): rerunning
        // the test reproduces any failure exactly.
        let seed = fnv1a(name.as_bytes()) ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "property '{name}' failed at case {i}/{total}: {e}",
                total = config.cases
            );
        }
    }
}

// ------------------------------------------------------------------ macros

/// Declare property tests: `proptest! { #![proptest_config(...)] #[test] fn
/// name(x in strategy, ...) { body } ... }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strat,)+);
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                let ($($arg,)+) = $crate::Strategy::generate(&__strategies, __rng);
                let __case = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3i64..17, y in 0.25f64..=0.5, n in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.5).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn collections_and_combinators(
            v in prop::collection::vec((0u32..5).prop_map(|i| i * 2), 2..10),
            s in prop::collection::btree_set(0u64..100, 0..20),
            k in prop_oneof![Just(1i64), 10i64..20],
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assert!(s.len() < 20);
            prop_assert!(k == 1 || (10..20).contains(&k));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first = Vec::new();
        for round in 0..2 {
            let log: std::rc::Rc<std::cell::RefCell<Vec<u64>>> = Default::default();
            let log2 = log.clone();
            crate::run_proptest(&ProptestConfig::with_cases(8), "det", move |rng| {
                log2.borrow_mut().push(crate::Strategy::generate(&(0u64..1000), rng));
                Ok(())
            });
            let got = log.borrow().clone();
            if round == 0 {
                first = got;
            } else {
                assert_eq!(first, got);
            }
        }
    }
}
