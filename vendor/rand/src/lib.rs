//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *tiny* subset of the `rand 0.8` API its code
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`].  The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic, fast, and more than good
//! enough for workload synthesis (nothing here is cryptographic).
//!
//! If the real `rand` crate ever becomes available, deleting this crate
//! and pointing the manifests at crates.io is a drop-in change.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the "standard" distribution
    /// (uniform bits for integers, uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from uniform bits via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                // Modulo reduction: bias is < span / 2^64, irrelevant for
                // the simulation-scale domains this workspace samples.
                self.start.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as $wide % span) as $t)
            }
        }
    )+};
}

impl_int_range!(u64 => u64, i64 => u64, u32 => u64, usize => u64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        // Scale a [0, 1) draw across the closed interval; the exact upper
        // endpoint is reachable only for degenerate ranges, which is fine
        // for the selectivity sweeps this backs.
        if lo == hi {
            return lo;
        }
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64 (the seeding procedure recommended by the
    /// xoshiro authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(0..17);
            assert!(v < 17);
            let w: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 10k uniforms is comfortably near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
